package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/directory"
	"repro/internal/grouping"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestInvariantsHoldAfterSimpleFlows(t *testing.T) {
	m := newM(t, 8, grouping.MIMAEC)
	const b = 17
	for _, c := range []topology.Coord{{X: 3, Y: 1}, {X: 3, Y: 6}, {X: 6, Y: 2}} {
		doOp(t, m, false, m.Mesh.ID(c), b)
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("after read: %v", err)
		}
	}
	doOp(t, m, true, nodeAt(m, 2, 2), b)
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("after write: %v", err)
	}
	doOp(t, m, false, nodeAt(m, 7, 7), b)
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("after dirty read: %v", err)
	}
}

func TestInvariantsDetectViolations(t *testing.T) {
	m := newM(t, 4, grouping.UIUA)
	doOp(t, m, true, nodeAt(m, 2, 2), 7)
	// Corrupt: second node fabricates a shared copy of an exclusive block.
	m.caches[nodeAt(m, 0, 0)].Fill(7, cache.SharedLine)
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("fabricated copy not detected")
	}
}

func TestInvariantsDetectWaiting(t *testing.T) {
	m := newM(t, 4, grouping.UIUA)
	doOp(t, m, false, nodeAt(m, 1, 1), 3)
	m.DirEntry(3).State = directory.Waiting
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("stuck waiting state not detected")
	}
}

func TestInvariantsRequireQuiescence(t *testing.T) {
	m := newM(t, 4, grouping.UIUA)
	m.Read(nodeAt(m, 1, 1), 3, func() {})
	m.Engine.RunUntil(m.Engine.Now() + 20) // request in flight
	if m.Quiesced() {
		t.Skip("request completed too fast to observe in-flight state")
	}
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("CheckInvariants accepted a non-quiesced machine")
	}
	m.Engine.Run()
}

// TestRandomizedSoakWithInvariants drives random reads and writes through
// every scheme and consistency model and validates the global coherence
// invariants at each quiescent point — the system-level property test.
func TestRandomizedSoakWithInvariants(t *testing.T) {
	for _, s := range grouping.AllSchemes {
		for _, cons := range []Consistency{SequentialConsistency, ReleaseConsistency} {
			rng := sim.NewRNG(uint64(77 + int(s)))
			p := DefaultParams(4, s)
			p.Consistency = cons
			p.CacheLines = 8 // force evictions and writebacks too
			m := NewMachine(p)
			const blocks = 12
			for step := 0; step < 120; step++ {
				n := topology.NodeID(rng.Intn(m.Mesh.Nodes()))
				b := directory.BlockID(rng.Intn(blocks))
				write := rng.Intn(3) == 0
				done := false
				switch {
				case write && cons == ReleaseConsistency:
					m.WriteAsync(n, b, func() { done = true })
					m.Engine.Run()
					m.Fence(n, func() {})
					m.Engine.Run()
				case write:
					m.Write(n, b, func() { done = true })
					m.Engine.Run()
				default:
					m.Read(n, b, func() { done = true })
					m.Engine.Run()
				}
				if !done {
					t.Fatalf("%v/%v step %d: op incomplete", s, cons, step)
				}
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("%v/%v step %d: %v", s, cons, step, err)
				}
			}
		}
	}
}

// TestRelaxedInvariantsMidFlight drives concurrent writers into the racy
// window and checks the relaxed invariants at every engine step: they must
// hold at each instant of a correct execution, with worms in flight and
// entries transiently Waiting (where the strict mode refuses to run at
// all).
func TestRelaxedInvariantsMidFlight(t *testing.T) {
	m := newM(t, 4, grouping.MIMAEC)
	const b = 5
	for _, c := range []topology.Coord{{X: 0, Y: 0}, {X: 3, Y: 3}, {X: 1, Y: 2}} {
		doOp(t, m, false, m.Mesh.ID(c), b)
	}
	done := 0
	m.Write(nodeAt(m, 3, 0), b, func() { done++ })
	m.Write(nodeAt(m, 0, 3), b, func() { done++ })
	steps := 0
	for m.Engine.Step() {
		steps++
		if err := m.CheckInvariantsMode(RelaxedInvariants); err != nil {
			t.Fatalf("step %d: %v", steps, err)
		}
		if !m.Quiesced() {
			if err := m.CheckInvariants(); err == nil {
				t.Fatalf("step %d: strict mode accepted a non-quiesced machine", steps)
			}
		}
	}
	if done != 2 {
		t.Fatalf("%d/2 writes completed", done)
	}
}

// TestRelaxedInvariantsTolerateWaiting pins the mode split on rule 5: a
// Waiting entry fails the strict check and passes the relaxed one.
func TestRelaxedInvariantsTolerateWaiting(t *testing.T) {
	m := newM(t, 4, grouping.UIUA)
	doOp(t, m, false, nodeAt(m, 1, 1), 3)
	m.DirEntry(3).State = directory.Waiting
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("strict mode accepted a Waiting entry at quiescence")
	}
	if err := m.CheckInvariantsMode(RelaxedInvariants); err != nil {
		t.Fatalf("relaxed mode rejected a transient Waiting entry: %v", err)
	}
}

// TestRelaxedInvariantsCatchViolations verifies the relaxed mode still
// enforces the per-instant safety rules: a fabricated second writer and a
// fabricated copy of an Exclusive block must both be reported.
func TestRelaxedInvariantsCatchViolations(t *testing.T) {
	m := newM(t, 4, grouping.UIUA)
	doOp(t, m, true, nodeAt(m, 2, 2), 7)
	m.caches[nodeAt(m, 0, 0)].Fill(7, cache.ModifiedLine)
	if err := m.CheckInvariantsMode(RelaxedInvariants); err == nil {
		t.Fatal("second Modified copy not detected in relaxed mode")
	}
	m.caches[nodeAt(m, 0, 0)].Invalidate(7)
	m.caches[nodeAt(m, 1, 0)].Fill(7, cache.SharedLine)
	if err := m.CheckInvariantsMode(RelaxedInvariants); err == nil {
		t.Fatal("fabricated Shared copy of an Exclusive block not detected in relaxed mode")
	}
}
