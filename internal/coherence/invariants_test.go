package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/directory"
	"repro/internal/grouping"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestInvariantsHoldAfterSimpleFlows(t *testing.T) {
	m := newM(t, 8, grouping.MIMAEC)
	const b = 17
	for _, c := range []topology.Coord{{X: 3, Y: 1}, {X: 3, Y: 6}, {X: 6, Y: 2}} {
		doOp(t, m, false, m.Mesh.ID(c), b)
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("after read: %v", err)
		}
	}
	doOp(t, m, true, nodeAt(m, 2, 2), b)
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("after write: %v", err)
	}
	doOp(t, m, false, nodeAt(m, 7, 7), b)
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("after dirty read: %v", err)
	}
}

func TestInvariantsDetectViolations(t *testing.T) {
	m := newM(t, 4, grouping.UIUA)
	doOp(t, m, true, nodeAt(m, 2, 2), 7)
	// Corrupt: second node fabricates a shared copy of an exclusive block.
	m.caches[nodeAt(m, 0, 0)].Fill(7, cache.SharedLine)
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("fabricated copy not detected")
	}
}

func TestInvariantsDetectWaiting(t *testing.T) {
	m := newM(t, 4, grouping.UIUA)
	doOp(t, m, false, nodeAt(m, 1, 1), 3)
	m.DirEntry(3).State = directory.Waiting
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("stuck waiting state not detected")
	}
}

func TestInvariantsRequireQuiescence(t *testing.T) {
	m := newM(t, 4, grouping.UIUA)
	m.Read(nodeAt(m, 1, 1), 3, func() {})
	m.Engine.RunUntil(m.Engine.Now() + 20) // request in flight
	if m.Quiesced() {
		t.Skip("request completed too fast to observe in-flight state")
	}
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("CheckInvariants accepted a non-quiesced machine")
	}
	m.Engine.Run()
}

// TestRandomizedSoakWithInvariants drives random reads and writes through
// every scheme and consistency model and validates the global coherence
// invariants at each quiescent point — the system-level property test.
func TestRandomizedSoakWithInvariants(t *testing.T) {
	for _, s := range grouping.AllSchemes {
		for _, cons := range []Consistency{SequentialConsistency, ReleaseConsistency} {
			rng := sim.NewRNG(uint64(77 + int(s)))
			p := DefaultParams(4, s)
			p.Consistency = cons
			p.CacheLines = 8 // force evictions and writebacks too
			m := NewMachine(p)
			const blocks = 12
			for step := 0; step < 120; step++ {
				n := topology.NodeID(rng.Intn(m.Mesh.Nodes()))
				b := directory.BlockID(rng.Intn(blocks))
				write := rng.Intn(3) == 0
				done := false
				switch {
				case write && cons == ReleaseConsistency:
					m.WriteAsync(n, b, func() { done = true })
					m.Engine.Run()
					m.Fence(n, func() {})
					m.Engine.Run()
				case write:
					m.Write(n, b, func() { done = true })
					m.Engine.Run()
				default:
					m.Read(n, b, func() { done = true })
					m.Engine.Run()
				}
				if !done {
					t.Fatalf("%v/%v step %d: op incomplete", s, cons, step)
				}
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("%v/%v step %d: %v", s, cons, step, err)
				}
			}
		}
	}
}
