package coherence

import (
	"strings"
	"testing"

	"repro/internal/grouping"
	"repro/internal/topology"
)

func TestTraceCapturesTransactionLifecycle(t *testing.T) {
	m := newM(t, 8, grouping.MIMAEC)
	var events []TraceEvent
	m.Trace(func(e TraceEvent) { events = append(events, e) })

	const b = 17
	for _, c := range []topology.Coord{{X: 3, Y: 1}, {X: 3, Y: 6}} {
		doOp(t, m, false, m.Mesh.ID(c), b)
	}
	events = nil // keep only the write transaction
	doOp(t, m, true, nodeAt(m, 2, 2), b)

	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	need := map[string]int{}
	for _, k := range kinds {
		need[k]++
	}
	if need["op.issue"] != 1 || need["op.done"] != 1 {
		t.Fatalf("op events = %v", need)
	}
	if need["txn.start"] != 1 || need["txn.done"] != 1 {
		t.Fatalf("txn events = %v", need)
	}
	if need["msg.send"] == 0 || need["msg.recv"] == 0 {
		t.Fatalf("message events missing: %v", need)
	}
	// Ordering: issue before txn.start before txn.done before op.done.
	idx := func(kind string) int {
		for i, k := range kinds {
			if k == kind {
				return i
			}
		}
		return -1
	}
	if !(idx("op.issue") < idx("txn.start") && idx("txn.start") < idx("txn.done") &&
		idx("txn.done") < idx("op.done")) {
		t.Fatalf("event order wrong: %v", kinds)
	}
	// Timestamps are non-decreasing.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("trace timestamps went backwards")
		}
	}
}

func TestTraceStringFormat(t *testing.T) {
	e := TraceEvent{At: 42, Node: 7, Kind: "msg.send", Block: 17, Detail: "writeReq -> node 1"}
	s := e.String()
	for _, want := range []string{"42", "node   7", "msg.send", "17", "writeReq"} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace string %q missing %q", s, want)
		}
	}
}

func TestTraceDisabledByDefaultAndRemovable(t *testing.T) {
	m := newM(t, 4, grouping.UIUA)
	doOp(t, m, false, nodeAt(m, 1, 1), 3) // no tracer: must not panic
	count := 0
	m.Trace(func(TraceEvent) { count++ })
	doOp(t, m, false, nodeAt(m, 2, 2), 3)
	if count == 0 {
		t.Fatal("tracer saw nothing")
	}
	m.Trace(nil)
	before := count
	doOp(t, m, false, nodeAt(m, 3, 3), 3)
	if count != before {
		t.Fatal("tracer fired after removal")
	}
}

func TestTraceDoesNotPerturbTiming(t *testing.T) {
	run := func(traced bool) uint64 {
		m := newM(t, 8, grouping.MIMATM)
		if traced {
			m.Trace(func(TraceEvent) {})
		}
		const b = 17
		for _, c := range []topology.Coord{{X: 3, Y: 1}, {X: 6, Y: 2}} {
			doOp(t, m, false, m.Mesh.ID(c), b)
		}
		doOp(t, m, true, nodeAt(m, 2, 2), b)
		return uint64(m.Engine.Now())
	}
	if run(false) != run(true) {
		t.Fatal("tracing changed simulated time")
	}
}
