package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/directory"
	"repro/internal/network"
	"repro/internal/topology"
	"repro/internal/trace"
)

// pendingOp tracks one processor's outstanding memory operation. Under
// sequential consistency each processor blocks on its miss, so there is at
// most one per node.
type pendingOp struct {
	block directory.BlockID
	write bool
	issue uint64 // sim.Time, kept raw to avoid import loop in tests
	done  func()
	// tok is the operation's trace token; zero when tracing is off.
	tok uint64
	// afterFill holds protocol work that raced ahead of the reply (e.g. a
	// fetchInval overtaking the writeReply on the other virtual network)
	// and must wait until the fill lands — the "window of vulnerability"
	// closing of [23].
	afterFill []func()
	// squashed marks a read miss caught by a broadcast/coarse or retried
	// invalidation while outstanding: the fill's data was serialized at
	// the home before the invalidating write, so the load consumes it —
	// ordered just before that write — but the line is not installed.
	// Directory-targeted invalidations never squash; they defer through
	// afterFill instead (see sharerInval).
	squashed bool
	// hasCopy carries the upgrading-write snapshot (Shared copy held at
	// issue) from the cache-access stage to the request send.
	hasCopy bool
}

// newOp returns a pendingOp from the free pool (or a fresh one).
//
//simcheck:pool acquire
//simcheck:noalloc
func (m *Machine) newOp() *pendingOp {
	if k := len(m.freeOps) - 1; k >= 0 {
		op := m.freeOps[k]
		m.freeOps[k] = nil
		m.freeOps = m.freeOps[:k]
		return op
	}
	//simcheck:allow noalloc -- cold pool fill; steady state reuses freeOps
	return &pendingOp{}
}

// freeOp recycles a completed operation (hit, or after its fill and
// deferred afterFill work have run). The pool is bounded.
//
//simcheck:pool release
//simcheck:noalloc
func (m *Machine) freeOp(op *pendingOp) {
	for j := range op.afterFill {
		op.afterFill[j] = nil
	}
	af := op.afterFill[:0]
	*op = pendingOp{}
	op.afterFill = af
	if len(m.freeOps) < 1024 {
		m.freeOps = append(m.freeOps, op)
	}
}

// finishHit completes an operation that hit in the cache (or the store
// buffer) at the end of its cache-access stage.
//
//simcheck:noalloc
func (m *Machine) finishHit(n topology.NodeID, op *pendingOp) {
	now := m.Engine.Now()
	if op.write {
		m.Metrics.WriteLatency.AddTime(now - simTime(op.issue))
	} else {
		m.Metrics.ReadLatency.AddTime(now - simTime(op.issue))
	}
	if m.Rec != nil {
		m.recOp(trace.KindOpDone, trace.FlagHit, n, op.tok, op.block)
	}
	done := op.done
	m.freeOp(op)
	done()
}

// ops returns node n's table of outstanding operations keyed by block.
// Under sequential consistency it holds at most one entry; under release
// consistency one read plus any number of buffered writes (each to a
// distinct block).
//
//simcheck:noalloc
func (m *Machine) ops(n topology.NodeID) map[directory.BlockID]*pendingOp {
	if m.opsTable == nil {
		//simcheck:allow noalloc -- lazy one-time table init
		m.opsTable = make([]map[directory.BlockID]*pendingOp, m.Mesh.Nodes())
	}
	if m.opsTable[n] == nil {
		//simcheck:allow noalloc -- lazy one-time per-node map init
		m.opsTable[n] = make(map[directory.BlockID]*pendingOp)
	}
	return m.opsTable[n]
}

// op returns node n's outstanding operation on block b, or nil.
//
//simcheck:noalloc
func (m *Machine) op(n topology.NodeID, b directory.BlockID) *pendingOp {
	return m.ops(n)[b]
}

//
//simcheck:noalloc
func (m *Machine) addOp(n topology.NodeID, op *pendingOp) {
	tab := m.ops(n)
	if tab[op.block] != nil {
		panic(fmt.Sprintf("coherence: node %d issued a second operation on block %d", n, op.block))
	}
	if m.Params.Consistency == SequentialConsistency && len(tab) != 0 {
		panic(fmt.Sprintf("coherence: node %d issued a second outstanding operation under SC", n))
	}
	tab[op.block] = op
}

//
//simcheck:noalloc
func (m *Machine) removeOp(n topology.NodeID, b directory.BlockID) {
	delete(m.ops(n), b)
}

// Read performs a shared-memory read by node n of block b, invoking done
// when the value is usable. Reads hit in Shared or Modified lines; under
// release consistency a read of a block with a buffered write outstanding
// by the same node is forwarded from the store buffer.
//
//simcheck:noalloc
func (m *Machine) Read(n topology.NodeID, b directory.BlockID, done func()) {
	issue := m.Engine.Now()
	m.trace(n, "op.issue", b, "read")
	var tok uint64
	if m.Rec != nil {
		tok = m.newOpTok()
		m.recOp(trace.KindOpIssue, 0, n, tok, b)
	}
	op := m.newOp()
	op.block, op.write, op.issue, op.done, op.tok = b, false, uint64(issue), done, tok
	m.server(n).doCall(m.Params.CacheAccess, m.fnReadIssue, op, int32(n))
}

// Write performs a shared-memory write by node n to block b, invoking done
// when exclusive ownership is granted (sequential consistency: the write
// completes only after every sharer has acknowledged invalidation).
//
//simcheck:noalloc
func (m *Machine) Write(n topology.NodeID, b directory.BlockID, done func()) {
	issue := m.Engine.Now()
	m.trace(n, "op.issue", b, "write")
	var tok uint64
	if m.Rec != nil {
		tok = m.newOpTok()
		m.recOp(trace.KindOpIssue, trace.FlagWrite, n, tok, b)
	}
	op := m.newOp()
	op.block, op.write, op.issue, op.done, op.tok = b, true, uint64(issue), done, tok
	m.server(n).doCall(m.Params.CacheAccess, m.fnWriteIssue, op, int32(n))
}

// WriteAsync performs a release-consistency write: issued fires as soon as
// the write is buffered (the processor continues), while the ownership
// acquisition and invalidation transaction proceed in the background. Use
// Fence to await completion of all of a node's buffered writes. The
// machine must be configured with ReleaseConsistency.
func (m *Machine) WriteAsync(n topology.NodeID, b directory.BlockID, issued func()) {
	if m.Params.Consistency != ReleaseConsistency {
		panic("coherence: WriteAsync requires ReleaseConsistency")
	}
	issue := m.Engine.Now()
	var tok uint64
	if m.Rec != nil {
		tok = m.newOpTok()
		m.recOp(trace.KindOpIssue, trace.FlagWrite, n, tok, b)
	}
	// The write enters the store buffer at issue time, so a Fence posted in
	// the same cycle already covers it.
	m.pendingWrites(n).count++
	m.server(n).do(m.Params.CacheAccess, func() {
		if m.caches[n].Lookup(b, true) {
			m.Metrics.WriteLatency.AddTime(m.Engine.Now() - issue)
			if m.Rec != nil {
				m.recOp(trace.KindOpDone, trace.FlagHit, n, tok, b)
			}
			m.retireBufferedWrite(n)
			issued()
			return
		}
		if op := m.op(n, b); op != nil && op.write {
			// Write coalesces into the already-buffered write to the block.
			m.Metrics.WriteLatency.AddTime(m.Engine.Now() - issue)
			if m.Rec != nil {
				m.recOp(trace.KindOpDone, trace.FlagHit, n, tok, b)
			}
			m.retireBufferedWrite(n)
			issued()
			return
		}
		if m.Rec != nil {
			m.recOp(trace.KindOpMiss, trace.FlagWrite, n, tok, b)
		}
		hasCopy := m.caches[n].State(b) == cache.SharedLine
		m.addOp(n, &pendingOp{block: b, write: true, issue: uint64(issue), done: func() {
			m.retireBufferedWrite(n)
		}, tok: tok})
		m.server(n).do(m.Params.SendOccupancy, func() {
			m.send(writeReq, n, m.Home(b), &msg{typ: writeReq, block: b, from: n, hasCopy: hasCopy, tok: tok})
		})
		issued()
	})
}

// retireBufferedWrite removes one write from node n's store buffer and
// resumes a waiting Fence when the buffer drains.
func (m *Machine) retireBufferedWrite(n topology.NodeID) {
	pw := m.pendingWrites(n)
	if pw.count <= 0 {
		panic("coherence: store buffer underflow")
	}
	pw.count--
	if pw.count == 0 && pw.fence != nil {
		resume := pw.fence
		pw.fence = nil
		resume()
	}
}

// Fence blocks node n until every buffered write has been granted (a
// release operation under release consistency).
func (m *Machine) Fence(n topology.NodeID, done func()) {
	pw := m.pendingWrites(n)
	if pw.count == 0 {
		done()
		return
	}
	if pw.fence != nil {
		panic("coherence: second concurrent Fence on one node")
	}
	pw.fence = done
}

// writeBuffer tracks a node's outstanding release-consistency writes.
type writeBuffer struct {
	count int
	fence func()
}

func (m *Machine) pendingWrites(n topology.NodeID) *writeBuffer {
	if m.writeBufs == nil {
		m.writeBufs = make([]*writeBuffer, m.Mesh.Nodes())
	}
	if m.writeBufs[n] == nil {
		m.writeBufs[n] = &writeBuffer{}
	}
	return m.writeBufs[n]
}

// deliver is the network's delivery callback: it dispatches every worm
// arrival to the protocol handler for its message type.
//
//simcheck:noalloc
func (m *Machine) deliver(d network.Delivery) {
	pm := d.Worm.Tag.(*msg)
	m.Metrics.MsgsRecv[d.Node]++
	if m.tracer != nil {
		m.trace(d.Node, "msg.recv", pm.block, "%v from node %d (final=%v)", pm.typ, d.Worm.Source(), d.Final) //simcheck:allow noalloc -- tracing-enabled path only
	}
	if m.Rec != nil {
		flag := trace.FlagNone
		if d.Final {
			flag = trace.FlagFinal
		}
		m.recMsg(trace.KindMsgRecv, flag, d.Node, d.Worm.ID, pm, 0)
	}
	if d.Final && len(pm.relay) > 0 {
		// Degraded multi-leg route: this node is a relay pivot, not the
		// message's destination — forward the next leg instead of handling.
		m.relayForward(d.Node, pm)
		return
	}
	switch pm.typ {
	case readReq, writeReq:
		m.server(d.Node).doCall(m.Params.RecvOccupancy, m.fnHomeRecv, pm, 0)
	case inval:
		if pm.tree != nil {
			m.recvTreeInval(d.Node, pm)
			return
		}
		m.sharerInval(d.Node, pm, d.Final)
	case invalAck:
		if pm.tree != nil {
			m.recvTreeAck(d.Node, pm)
			return
		}
		m.server(d.Node).doCall(m.Params.RecvOccupancy, m.fnRecvInvalAck, pm, 0)
	case gatherAck:
		m.server(d.Node).doCall(m.Params.RecvOccupancy, m.fnRecvGatherAck, pm, 0)
	case fetchReq, fetchInval:
		m.ownerFetch(d.Node, pm)
	case fetchReply:
		m.homeFetchReply(d.Node, pm)
	case readReply, writeReply:
		m.requesterReply(d.Node, pm)
	case writeback:
		m.homeWriteback(d.Node, pm)
	case fwdData:
		m.recvForward(d.Node, pm, d.Final)
	case fwdAck:
		m.recvForwardAck(d.Node, pm)
	case barrier:
		m.barrierDeliver(d, pm.bar)
	default:
		panic("coherence: unhandled message " + pm.typ.String())
	}
}

// homeHandle runs a read or write request at the home once the block is
// free of earlier transactions. The block is "busy" from here until
// releaseBlock.
//
//simcheck:noalloc
func (m *Machine) homeHandle(home topology.NodeID, pm *msg) {
	m.server(home).doCall(m.Params.DirLookup, m.fnHomeLookup, pm, int32(home))
}

func (m *Machine) homeRead(home topology.NodeID, e *directory.Entry, pm *msg) {
	b, requester := pm.block, pm.from
	switch e.State {
	case directory.Uncached, directory.Shared:
		e.State = directory.Shared
		e.Sharers.Set(requester)
		m.notePointerLimit(e)
		m.server(home).doCall(m.Params.MemAccess+m.Params.SendOccupancy, m.fnHomeReadReply, pm, int32(home))
	case directory.Exclusive:
		if e.Owner == requester {
			// The owner re-requesting can only mean its copy raced away via
			// writeback; serve it like an uncached read once the writeback
			// lands. Simplest consistent action: treat as uncached.
			e.State = directory.Shared
			e.Sharers.Reset()
			e.Sharers.Set(requester)
			m.server(home).doCall(m.Params.MemAccess+m.Params.SendOccupancy, m.fnHomeReadReply, pm, int32(home))
			return
		}
		e.State = directory.Waiting
		m.homeOps(b).set(&homeOp{requester: requester, write: false, owner: e.Owner,
			forwarded: m.Params.ReplyForwarding})
		m.server(home).do(m.Params.SendOccupancy, func() {
			m.send(fetchReq, home, e.Owner,
				&msg{typ: fetchReq, block: b, from: requester, ownGen: e.OwnGen})
		})
	default:
		panic("coherence: homeRead in state " + e.State.String())
	}
}

func (m *Machine) homeWrite(home topology.NodeID, e *directory.Entry, pm *msg) {
	b, requester := pm.block, pm.from
	if m.Params.Protocol == WriteUpdate {
		m.homeWriteUpdate(home, e, pm)
		return
	}
	grant := func(withData bool) {
		cost := m.Params.SendOccupancy
		if withData {
			cost += m.Params.MemAccess
		}
		m.server(home).do(cost, func() {
			e.State = directory.Exclusive
			e.Owner = requester
			e.Sharers.Reset()
			e.Overflow = false
			m.clearCoarse(e)
			e.OwnGen++
			m.send(writeReply, home, requester,
				&msg{typ: writeReply, block: b, from: requester, ownGen: e.OwnGen})
			m.releaseBlock(b)
		})
	}
	switch e.State {
	case directory.Uncached:
		grant(true)
	case directory.Exclusive:
		if e.Owner == requester {
			grant(false)
			return
		}
		e.State = directory.Waiting
		m.homeOps(b).set(&homeOp{requester: requester, write: true, owner: e.Owner})
		m.server(home).do(m.Params.SendOccupancy, func() {
			m.send(fetchInval, home, e.Owner,
				&msg{typ: fetchInval, block: b, from: requester, ownGen: e.OwnGen})
		})
	case directory.Shared:
		m.startInval(home, e, b, requester, func() {
			grant(!pm.hasCopy)
		})
	default:
		panic("coherence: homeWrite in state " + e.State.String())
	}
}

// homeWriteUpdate runs a write under the write-update protocol: the home
// writes memory and distributes the new data to every sharer with update
// worms (the invalidation machinery with txn.update set); the writer joins
// the sharers and completes when all acks are in. No exclusive state
// exists under this protocol.
func (m *Machine) homeWriteUpdate(home topology.NodeID, e *directory.Entry, pm *msg) {
	b, requester := pm.block, pm.from
	if e.State == directory.Exclusive {
		panic("coherence: exclusive entry under write-update protocol")
	}
	finish := func() {
		m.server(home).do(m.Params.MemAccess+m.Params.SendOccupancy, func() {
			e.State = directory.Shared
			e.Sharers.Set(requester)
			m.notePointerLimit(e)
			m.send(writeReply, home, requester, &msg{typ: writeReply, block: b, from: requester})
			m.releaseBlock(b)
		})
	}
	if e.State == directory.Uncached {
		finish()
		return
	}
	m.startInval(home, e, b, requester, func() {
		// Distribution complete; the entry returns to Shared with every
		// copy refreshed.
		e.State = directory.Shared
		finish()
	})
}

// deferSafe reports whether a directory-targeted invalidation may defer
// past a pending read's fill (the afterFill remedy). The deferral rests
// on one implication: node listed in the directory snapshot AND read op
// pending ⟹ that read was served and its fill is in flight on the reply
// network, so the deferred acknowledgment always unblocks. Two features
// break the implication by letting presence bits go stale under a
// pending miss, turning the deferral into a deadlock:
//
//   - Bounded caches: a Shared victim is evicted silently, the presence
//     bit survives, and the node's re-request can be queued at the home
//     behind the very transaction whose invalidation we would defer.
//   - Data forwarding: forward recipients enter the presence bits at
//     send time, and one whose concurrent miss skipped the forwarded
//     install is listed with its own request possibly still queued.
//
// In either configuration sharers fall back to the always-safe squash
// remedy instead.
func (m *Machine) deferSafe() bool {
	return m.Params.CacheLines == 0 && !m.Params.DataForwarding
}

// sharerInval handles an invalidation arriving at a sharer, under any
// framework: unicast (UI-UA), multicast copy (MI-UA, BR), or i-reserve
// copy / final (MI-MA). Update transactions (write-update protocol)
// refresh the local copy instead of dropping it.
func (m *Machine) sharerInval(n topology.NodeID, pm *msg, final bool) {
	if op := m.op(n, pm.block); op != nil && !op.write {
		// The invalidation overtook our own read reply (virtual networks
		// are unordered relative to each other): handling it now and then
		// filling would install a stale Shared copy after the writer's
		// grant. Two remedies, chosen by what we can prove about the fill:
		//
		// Directory-targeted invalidation (the common case): the home
		// snapshotted us from the presence vector, so it served our read
		// before this transaction started and the fill is in flight on the
		// reply network — it cannot be queued behind the transaction.
		// Defer the whole invalidation (and its acknowledgment) until the
		// fill lands: install, then invalidate, then acknowledge. The race
		// closes invisibly — the node ends uncached and the write waits for
		// the ack, exactly as if the fill had beaten the invalidation.
		//
		// Broadcast/coarse-vector invalidations and recovery retries can
		// reach a node whose request is still *queued* at the home behind
		// this very transaction; deferring the ack would then deadlock. So
		// the miss is squashed instead: acknowledge now, and when the
		// reply lands consume its data without installing the line (see
		// requesterReply for why that load is still legal). Bounded caches
		// and data forwarding void the targeted-implies-served proof the
		// same way — see deferSafe — and also squash.
		//
		// Writes are exempt from both: a pending writer is never a target
		// of its own transaction, and another writer's fill installs
		// Modified via its own grant, never a stale Shared copy.
		if !pm.retry && !pm.txn.broadcast && m.deferSafe() {
			op.afterFill = append(op.afterFill, func() { m.sharerInvalNow(n, pm, final) })
			return
		}
		if !op.squashed {
			op.squashed = true
			if m.OnSquash != nil {
				m.OnSquash(n, pm.block)
			}
		}
	}
	m.sharerInvalNow(n, pm, final)
}

// sharerInvalNow performs the sharer-side invalidation work: drop (or
// refresh) the copy and acknowledge through the scheme's framework. Split
// from sharerInval so a deferred invalidation can run verbatim after the
// fill it raced.
func (m *Machine) sharerInvalNow(n topology.NodeID, pm *msg, final bool) {
	fn := m.fnSharerInvalMid
	if final {
		fn = m.fnSharerInvalFinal
	}
	m.server(n).doCall(m.Params.RecvOccupancy+m.Params.CacheInvalidate, fn, pm, int32(n))
}

// ownerFetch handles fetchReq (downgrade) and fetchInval (invalidate) at
// the current owner.
func (m *Machine) ownerFetch(n topology.NodeID, pm *msg) {
	if op := m.op(n, pm.block); op != nil && pm.ownGen != m.ownGenOf(n, pm.block) {
		// The fetch is stamped with a newer ownership generation than the
		// copy we last installed: our own grant for this block is in flight
		// and the fetch overtook it (virtual networks are unordered).
		// Handle it once the fill completes. A generation *match* means the
		// opposite — we are the recorded owner from an earlier tenure, our
		// copy is gone (evicted, writeback in flight) and our new request
		// is still queued at the home behind this very transaction, so
		// waiting for a fill would deadlock; fall through and answer from
		// the writeback buffer instead.
		op.afterFill = append(op.afterFill, func() { m.ownerFetch(n, pm) })
		return
	}
	m.server(n).do(m.Params.RecvOccupancy+m.Params.CacheAccess, func() {
		if m.caches[n].State(pm.block) == cache.ModifiedLine {
			if pm.typ == fetchInval {
				m.caches[n].Invalidate(pm.block)
			} else {
				m.caches[n].Downgrade(pm.block)
			}
		}
		// If the line is already gone a writeback is in flight; the data
		// logically comes from the writeback buffer.
		if pm.typ == fetchReq && m.Params.ReplyForwarding {
			// 3-hop dirty read: data straight to the requester, sharing
			// writeback to the home.
			m.server(n).do(m.Params.SendOccupancy, func() {
				m.send(readReply, n, pm.from, &msg{typ: readReply, block: pm.block, from: pm.from})
			})
		}
		m.server(n).do(m.Params.SendOccupancy, func() {
			home := m.Home(pm.block)
			m.send(fetchReply, n, home, &msg{typ: fetchReply, block: pm.block, from: pm.from})
		})
	})
}

// homeFetchReply finishes a dirty-block transaction at the home.
func (m *Machine) homeFetchReply(home topology.NodeID, pm *msg) {
	m.server(home).do(m.Params.RecvOccupancy+m.Params.MemAccess, func() {
		op := m.homeOps(pm.block).take()
		e := m.dirs[home].Lookup(pm.block)
		if op.write {
			e.State = directory.Exclusive
			e.Owner = op.requester
			e.Sharers.Reset()
			e.OwnGen++
			m.server(home).do(m.Params.SendOccupancy, func() {
				m.send(writeReply, home, op.requester,
					&msg{typ: writeReply, block: pm.block, from: op.requester, ownGen: e.OwnGen})
				m.releaseBlock(pm.block)
			})
			return
		}
		e.State = directory.Shared
		e.Sharers.Reset()
		e.Overflow = false
		m.clearCoarse(e)
		e.Sharers.Set(op.owner)
		e.Sharers.Set(op.requester)
		m.notePointerLimit(e)
		forwarding := m.forwardAfterFetch(home, e, pm.block,
			[]topology.NodeID{op.owner, op.requester},
			func() { m.releaseBlock(pm.block) })
		if op.forwarded {
			// 3-hop mode: the owner already sent the requester its data;
			// the home only retires the sharing writeback.
			if !forwarding {
				m.releaseBlock(pm.block)
			}
			return
		}
		m.server(home).do(m.Params.SendOccupancy, func() {
			m.send(readReply, home, op.requester, &msg{typ: readReply, block: pm.block, from: op.requester})
			if !forwarding {
				m.releaseBlock(pm.block)
			}
		})
	})
}

// requesterReply completes the processor's outstanding miss.
func (m *Machine) requesterReply(n topology.NodeID, pm *msg) {
	m.server(n).doCall(m.Params.RecvOccupancy+m.Params.CacheAccess, m.fnRequesterReply, pm, int32(n))
}

// initHandlers binds the hot-path protocol handlers once per machine: each
// is a single closure over m, scheduled through server.doCall with the
// message as its argument, so per-delivery dispatch allocates nothing.
// Handlers that are the terminal consumer of a single-delivery message
// recycle it with freeMsg; see freeMsg for the aliasing rules.
func (m *Machine) initHandlers() {
	//simcheck:noalloc
	m.fnReadIssue = func(a any, i int32) {
		op := a.(*pendingOp)
		n := topology.NodeID(i)
		b := op.block
		if prev := m.op(n, b); prev != nil && prev.write {
			// Store-buffer forwarding: our own pending write holds the
			// value. This must be checked before the cache: an upgrading
			// write leaves the old Shared copy in place while buffered, and
			// a read served from that line would see pre-write data —
			// breaking same-location program order.
			m.finishHit(n, op)
			return
		}
		if m.caches[n].Lookup(b, false) {
			m.finishHit(n, op)
			return
		}
		if m.Rec != nil {
			m.recOp(trace.KindOpMiss, 0, n, op.tok, b)
		}
		m.addOp(n, op)
		m.server(n).doCall(m.Params.SendOccupancy, m.fnSendReadReq, op, int32(n))
	}
	//simcheck:noalloc
	m.fnSendReadReq = func(a any, i int32) {
		op := a.(*pendingOp)
		n := topology.NodeID(i)
		rq := m.newMsg()
		rq.typ, rq.block, rq.from, rq.tok = readReq, op.block, n, op.tok
		m.send(readReq, n, m.Home(op.block), rq)
	}
	//simcheck:noalloc
	m.fnWriteIssue = func(a any, i int32) {
		op := a.(*pendingOp)
		n := topology.NodeID(i)
		b := op.block
		if m.caches[n].Lookup(b, true) {
			m.finishHit(n, op)
			return
		}
		if m.Rec != nil {
			m.recOp(trace.KindOpMiss, trace.FlagWrite, n, op.tok, b)
		}
		op.hasCopy = m.caches[n].State(b) == cache.SharedLine
		m.addOp(n, op)
		m.server(n).doCall(m.Params.SendOccupancy, m.fnSendWriteReq, op, int32(n))
	}
	//simcheck:noalloc
	m.fnSendWriteReq = func(a any, i int32) {
		op := a.(*pendingOp)
		n := topology.NodeID(i)
		rq := m.newMsg()
		rq.typ, rq.block, rq.from, rq.hasCopy, rq.tok = writeReq, op.block, n, op.hasCopy, op.tok
		m.send(writeReq, n, m.Home(op.block), rq)
	}
	//simcheck:noalloc
	m.fnHomeRecv = func(a any, _ int32) {
		pm := a.(*msg)
		q := m.queueFor(pm.block)
		if q.busy {
			q.queue.Push(pm)
			return
		}
		q.busy = true
		m.homeHandle(m.homes.Home(pm.block), pm)
	}
	//simcheck:noalloc
	m.fnHomeLookup = func(a any, i int32) {
		pm := a.(*msg)
		home := topology.NodeID(i)
		e := m.dirs[home].Lookup(pm.block)
		if m.Rec != nil {
			m.recMsg(trace.KindDirDone, 0, home, 0, pm, 0)
		}
		if pm.typ == readReq {
			m.homeRead(home, e, pm)
		} else {
			m.homeWrite(home, e, pm)
		}
	}
	//simcheck:noalloc
	m.fnHomeReadReply = func(a any, i int32) {
		pm := a.(*msg)
		b, requester, home := pm.block, pm.from, topology.NodeID(i)
		reply := m.newMsg()
		reply.typ, reply.block, reply.from = readReply, b, requester
		m.send(readReply, home, requester, reply)
		m.releaseBlock(b)
		m.freeMsg(pm)
	}
	//simcheck:noalloc
	m.fnRecvInvalAck = func(a any, _ int32) {
		pm := a.(*msg)
		if pm.txn.rec {
			pm.txn.sharerAcked(m, pm.from)
		} else {
			pm.txn.ackArrived(m)
		}
		m.freeMsg(pm)
	}
	//simcheck:noalloc
	m.fnRecvGatherAck = func(a any, _ int32) {
		pm := a.(*msg)
		if pm.txn.rec {
			pm.txn.groupAcked(m, pm.groupIdx)
		} else {
			pm.txn.ackArrived(m)
		}
		m.freeMsg(pm)
	}
	// sharerInvalBody is the sharer-side invalidation work previously
	// inlined in sharerInvalNow; pm is the (shared, multicast) inval
	// message and is never freed here.
	//simcheck:noalloc
	sharerInvalBody := func(pm *msg, n topology.NodeID, final bool) {
		txn := pm.txn
		if m.hard != nil && m.hard.CrashedAt(n, m.Engine.Now()) {
			// Fail-silent crash: the node neither invalidates nor
			// acknowledges — no unicast ack, no i-ack post, no gather
			// launch. The home's timeout notices the silence and the
			// retry path invalidates the crashed sharer implicitly at
			// the directory (see txnDeadline).
			return
		}
		if !txn.update {
			m.caches[n].Invalidate(pm.block)
		}
		if pm.retry || !m.Params.Scheme.GatherAck() {
			// Unicast acknowledgment: the scheme's normal framework, or the
			// recovery fallback — retried sharers always answer with a
			// unicast ack so a degraded MI-MA transaction completes on the
			// UI-UA machinery. Re-invalidating an already-invalid line and
			// re-acking an already-confirmed sharer are both no-ops.
			m.server(n).doCall(m.Params.SendOccupancy, m.fnSendInvalAck, pm, int32(n))
			return
		}
		if final {
			// Last member of the group: launch the i-gather worm — unless
			// the home gave up on this generation while the inval was in
			// flight; the retry's unicast invals re-cover the group and the
			// purged i-ack entries make a stale gather unlaunchable.
			m.server(n).doCall(m.Params.SendOccupancy, m.fnSendGather, pm, int32(n))
			return
		}
		// Intermediate member: post the ack into the local i-ack buffer
		// entry the reserve worm left behind; no outgoing message at all —
		// the point of the MI-MA framework. (Posts for aborted transactions
		// are absorbed by the network.)
		m.Net.PostAck(n, txn.id)
	}
	//simcheck:noalloc
	m.fnSharerInvalMid = func(a any, i int32) {
		sharerInvalBody(a.(*msg), topology.NodeID(i), false)
	}
	//simcheck:noalloc
	m.fnSharerInvalFinal = func(a any, i int32) {
		sharerInvalBody(a.(*msg), topology.NodeID(i), true)
	}
	//simcheck:noalloc
	m.fnSendInvalAck = func(a any, i int32) {
		pm := a.(*msg)
		n := topology.NodeID(i)
		ack := m.newMsg()
		ack.typ, ack.block, ack.from, ack.txn = invalAck, pm.block, n, pm.txn
		m.send(invalAck, n, pm.txn.home, ack)
	}
	//simcheck:noalloc
	m.fnSendGather = func(a any, _ int32) {
		pm := a.(*msg)
		txn := pm.txn
		if txn.rec && (pm.gen != txn.gen || txn.completed) {
			return
		}
		m.sendGather(txn, pm.groupIdx)
	}
	//simcheck:noalloc
	m.fnRequesterReply = func(a any, i int32) {
		pm := a.(*msg)
		n := topology.NodeID(i)
		op := m.op(n, pm.block)
		if op == nil {
			panic("coherence: reply for no outstanding operation")
		}
		m.removeOp(n, pm.block)
		if op.squashed {
			// The line was invalidated while this fill was in flight. The
			// reply's data was serialized at the home before the
			// invalidating write, so the load itself still completes with
			// that value — ordered just before the write — but the line is
			// not installed: the directory no longer tracks this node, and
			// a late install would be exactly the untracked stale copy the
			// squash exists to prevent.
			if pm.typ == writeReply {
				panic("coherence: write fill squashed")
			}
			m.trace(n, "op.squash", pm.block, "squashed fill consumed without install")
		} else {
			state := cache.SharedLine
			if pm.typ == writeReply && m.Params.Protocol == WriteInvalidate {
				state = cache.ModifiedLine
				m.setOwnGen(n, pm.block, pm.ownGen)
			}
			victim, vs, evicted := m.caches[n].Fill(pm.block, state)
			if evicted && vs == cache.ModifiedLine {
				//simcheck:allow noalloc -- modified-line eviction is the cold path
				m.server(n).do(m.Params.SendOccupancy, func() {
					m.send(writeback, n, m.Home(victim),
						&msg{typ: writeback, block: victim, from: n, ownGen: m.ownGenOf(n, victim)})
				})
			}
		}
		now := m.Engine.Now()
		if m.tracer != nil {
			m.trace(n, "op.done", pm.block, "%v after %d cycles", pm.typ, now-simTime(op.issue)) //simcheck:allow noalloc -- tracing-enabled path only
		}
		if m.Rec != nil {
			flag := trace.FlagNone
			if pm.typ == writeReply {
				flag = trace.FlagWrite
			}
			m.recOp(trace.KindOpDone, flag, n, op.tok, pm.block)
		}
		if pm.typ == writeReply {
			m.Metrics.WriteLatency.AddTime(now - simTime(op.issue))
			m.Metrics.WriteMiss.AddTime(now - simTime(op.issue))
		} else {
			m.Metrics.ReadLatency.AddTime(now - simTime(op.issue))
			m.Metrics.ReadMiss.AddTime(now - simTime(op.issue))
		}
		op.done()
		for _, fn := range op.afterFill {
			fn()
		}
		m.freeOp(op)
		m.freeMsg(pm)
	}
}

// notePointerLimit marks a limited directory entry as overflowed once it
// tracks more sharers than it has pointers for, falling back to the
// coarse vector when configured and to broadcast otherwise.
func (m *Machine) notePointerLimit(e *directory.Entry) {
	if m.Params.DirPointers <= 0 || e.Overflow || e.CoarseMode {
		if e.CoarseMode {
			// Already coarse: fold any newly set exact bits into regions.
			m.foldIntoCoarse(e)
		}
		return
	}
	if e.Sharers.Count() <= m.Params.DirPointers {
		return
	}
	if m.Params.DirCoarseRegion > 0 {
		e.CoarseMode = true
		if e.Coarse == nil {
			e.Coarse = directory.NewPresence(m.regionCount())
		}
		m.foldIntoCoarse(e)
		return
	}
	e.Overflow = true
}

// regionCount returns the number of coarse-vector regions.
func (m *Machine) regionCount() int {
	r := m.Params.DirCoarseRegion
	return (m.Mesh.Nodes() + r - 1) / r
}

// region maps a node to its coarse-vector region.
func (m *Machine) region(n topology.NodeID) topology.NodeID {
	return topology.NodeID(int(n) / m.Params.DirCoarseRegion)
}

// foldIntoCoarse moves the entry's exact presence bits into the coarse
// vector (the exact identities are lost, as in hardware).
func (m *Machine) foldIntoCoarse(e *directory.Entry) {
	for _, n := range e.Sharers.Nodes() {
		e.Coarse.Set(m.region(n))
	}
	e.Sharers.Reset()
}

// clearCoarse resets an entry's coarse-vector state.
func (m *Machine) clearCoarse(e *directory.Entry) {
	e.CoarseMode = false
	if e.Coarse != nil {
		e.Coarse.Reset()
	}
}

// ownKey addresses one node's Modified copy of one block.
type ownKey struct {
	n topology.NodeID
	b directory.BlockID
}

// setOwnGen records the grant generation node n's Modified copy of b was
// installed under.
func (m *Machine) setOwnGen(n topology.NodeID, b directory.BlockID, gen uint64) {
	if m.ownGens == nil {
		m.ownGens = make(map[ownKey]uint64)
	}
	m.ownGens[ownKey{n, b}] = gen
}

// ownGenOf returns the grant generation to stamp on node n's writeback of
// block b.
func (m *Machine) ownGenOf(n topology.NodeID, b directory.BlockID) uint64 {
	return m.ownGens[ownKey{n, b}]
}

// homeWriteback retires a dirty eviction at the home. The generation check
// guards against the stale-writeback race: the owner evicts (writeback in
// flight), re-acquires exclusive ownership — directly, or via any chain of
// intervening owners — and only then does the old writeback land. Without
// the check the home would clear the entry while the node legitimately
// holds a Modified copy, silently uncaching a dirty block.
func (m *Machine) homeWriteback(home topology.NodeID, pm *msg) {
	m.server(home).do(m.Params.RecvOccupancy+m.Params.MemAccess, func() {
		e := m.dirs[home].Lookup(pm.block)
		if e.State == directory.Exclusive && e.Owner == pm.from && pm.ownGen == e.OwnGen {
			e.State = directory.Uncached
			e.Sharers.Reset()
			e.Overflow = false
			m.clearCoarse(e)
		}
		// Otherwise a fetch crossed the writeback; the fetch path already
		// handled ownership.
	})
}
