package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func mesh8() *topology.Mesh { return topology.NewSquareMesh(8) }

func at(m *topology.Mesh, x, y int) topology.NodeID {
	return m.ID(topology.Coord{X: x, Y: y})
}

func TestECubeNextPortOrdersXFirst(t *testing.T) {
	m := mesh8()
	src, dst := at(m, 1, 1), at(m, 4, 5)
	if got := ECube.NextPort(m, src, dst); got != topology.East {
		t.Fatalf("NextPort = %v, want east (X first)", got)
	}
	aligned := at(m, 4, 1)
	if got := ECube.NextPort(m, aligned, dst); got != topology.North {
		t.Fatalf("NextPort after X done = %v, want north", got)
	}
	if got := ECube.NextPort(m, dst, dst); got != topology.Local {
		t.Fatalf("NextPort at destination = %v, want local", got)
	}
}

func TestECubeUnicastPathShape(t *testing.T) {
	m := mesh8()
	path := ECube.UnicastPath(m, at(m, 1, 1), at(m, 4, 3))
	if PathLength(path) != 5 {
		t.Fatalf("path length = %d, want 5 (minimal)", PathLength(path))
	}
	moves := Moves(m, path)
	// XY: all X moves then all Y moves.
	want := []topology.Port{topology.East, topology.East, topology.East, topology.North, topology.North}
	for i := range want {
		if moves[i] != want[i] {
			t.Fatalf("moves = %v, want %v", moves, want)
		}
	}
}

func TestWestFirstUnicastGoesWestFirst(t *testing.T) {
	m := mesh8()
	path := WestFirst.UnicastPath(m, at(m, 5, 2), at(m, 2, 6))
	moves := Moves(m, path)
	if moves[0] != topology.West || moves[1] != topology.West || moves[2] != topology.West {
		t.Fatalf("west-first did not go west first: %v", moves)
	}
	if !WestFirst.Conforms(moves) {
		t.Fatalf("west-first unicast path does not conform: %v", moves)
	}
}

func TestUnicastPathsMinimalProperty(t *testing.T) {
	m := topology.NewSquareMesh(16)
	prop := func(a, b uint8) bool {
		src := topology.NodeID(int(a) % m.Nodes())
		dst := topology.NodeID(int(b) % m.Nodes())
		for _, base := range []Base{ECube, WestFirst} {
			p := base.UnicastPath(m, src, dst)
			if PathLength(p) != m.Distance(src, dst) {
				return false
			}
			if p[0] != src || p[len(p)-1] != dst {
				return false
			}
			if !base.Conforms(Moves(m, p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConformsECube(t *testing.T) {
	E, W, N, S := topology.East, topology.West, topology.North, topology.South
	cases := []struct {
		moves []topology.Port
		want  bool
	}{
		{nil, true},
		{[]topology.Port{E, E, E}, true},
		{[]topology.Port{N, N}, true},
		{[]topology.Port{E, E, N, N}, true},
		{[]topology.Port{W, S, S}, true},
		{[]topology.Port{N, E}, false},    // Y before X
		{[]topology.Port{E, W}, false},    // X reversal
		{[]topology.Port{E, N, S}, false}, // Y reversal
		{[]topology.Port{E, N, E}, false}, // X after Y
		{[]topology.Port{E, E, N, N, E}, false},
	}
	for _, tc := range cases {
		if got := ECube.Conforms(tc.moves); got != tc.want {
			t.Errorf("ECube.Conforms(%v) = %v, want %v", tc.moves, got, tc.want)
		}
	}
}

func TestConformsWestFirst(t *testing.T) {
	E, W, N, S := topology.East, topology.West, topology.North, topology.South
	cases := []struct {
		moves []topology.Port
		want  bool
	}{
		{nil, true},
		{[]topology.Port{W, W, N, E, S, E}, true}, // west first then snake
		{[]topology.Port{N, E, S, E, N}, true},    // staircase east
		{[]topology.Port{E, W}, false},            // west after east
		{[]topology.Port{W, E}, false},            // 180 reversal off the west phase
		{[]topology.Port{W, W, E, N}, false},      // ditto, mid-path
		{[]topology.Port{N, W}, false},            // west after north
		{[]topology.Port{N, S}, false},            // 180 reversal
		{[]topology.Port{S, N}, false},            // 180 reversal
		{[]topology.Port{N, E, S}, true},          // reversal split by east is fine
		{[]topology.Port{W, N, E, S, E}, true},
	}
	for _, tc := range cases {
		if got := WestFirst.Conforms(tc.moves); got != tc.want {
			t.Errorf("WestFirst.Conforms(%v) = %v, want %v", tc.moves, got, tc.want)
		}
	}
}

func TestPathThroughColumnGroupECube(t *testing.T) {
	// Home at (2,3); worm covers column 5 sharers at y = 1, 5 entered at
	// row 3: must fail (needs both up and down in the same column).
	m := mesh8()
	home := at(m, 2, 3)
	_, err := ECube.PathThrough(m, []topology.NodeID{home, at(m, 5, 5), at(m, 5, 1)})
	if err == nil {
		t.Fatal("e-cube path covering both column directions should fail")
	}
	// Upward-only column group is fine.
	path, err := ECube.PathThrough(m, []topology.NodeID{home, at(m, 5, 4), at(m, 5, 6)})
	if err != nil {
		t.Fatalf("column-up group failed: %v", err)
	}
	if !ECube.Conforms(Moves(m, path)) {
		t.Fatal("returned path not conformed")
	}
	if PathLength(path) != 3+3 {
		t.Fatalf("path length = %d, want 6", PathLength(path))
	}
}

func TestPathThroughHomeRowThenColumnECube(t *testing.T) {
	// Row-column merged group: home row sharers on the way to a column.
	m := mesh8()
	home := at(m, 1, 2)
	wp := []topology.NodeID{home, at(m, 3, 2), at(m, 6, 2), at(m, 6, 5)}
	path, err := ECube.PathThrough(m, wp)
	if err != nil {
		t.Fatalf("row-column group failed: %v", err)
	}
	if PathLength(path) != 5+3 {
		t.Fatalf("path length = %d, want 8", PathLength(path))
	}
}

func TestPathThroughSnakeWestFirst(t *testing.T) {
	// Eastern snake: home (1,4); sharers (3,1), (3,6), (5,2) — one worm
	// under west-first, impossible under e-cube.
	m := mesh8()
	home := at(m, 1, 4)
	wp := []topology.NodeID{home, at(m, 3, 1), at(m, 3, 6), at(m, 5, 2)}
	if _, err := ECube.PathThrough(m, wp); err == nil {
		t.Fatal("snake should not conform to e-cube")
	}
	path, err := WestFirst.PathThrough(m, wp)
	if err != nil {
		t.Fatalf("west-first snake failed: %v", err)
	}
	if !WestFirst.Conforms(Moves(m, path)) {
		t.Fatal("snake path not west-first conformed")
	}
	// Must visit every waypoint in order.
	idx := 0
	for _, n := range path {
		if idx < len(wp) && n == wp[idx] {
			idx++
		}
	}
	if idx != len(wp) {
		t.Fatalf("path does not visit all waypoints in order: visited %d of %d", idx, len(wp))
	}
}

func TestPathThroughWestThenSnake(t *testing.T) {
	// Western worm: go west first to the westernmost column, then snake
	// east over western sharers.
	m := mesh8()
	home := at(m, 6, 3)
	wp := []topology.NodeID{home, at(m, 1, 3), at(m, 2, 6), at(m, 4, 1)}
	path, err := WestFirst.PathThrough(m, wp)
	if err != nil {
		t.Fatalf("west-then-snake failed: %v", err)
	}
	moves := Moves(m, path)
	if !WestFirst.Conforms(moves) {
		t.Fatalf("path not conformed: %v", moves)
	}
}

func TestPathThroughSingleWaypoint(t *testing.T) {
	m := mesh8()
	path, err := ECube.PathThrough(m, []topology.NodeID{at(m, 3, 3)})
	if err != nil || len(path) != 1 {
		t.Fatalf("single waypoint path = %v, %v", path, err)
	}
}

func TestPathThroughEmptyErrors(t *testing.T) {
	if _, err := ECube.PathThrough(mesh8(), nil); err == nil {
		t.Fatal("empty waypoints should error")
	}
}

func TestMovesAdjacent(t *testing.T) {
	m := mesh8()
	if Moves(m, []topology.NodeID{at(m, 0, 0)}) != nil {
		t.Fatal("Moves of single node should be nil")
	}
}

func TestMovesNonAdjacentPanics(t *testing.T) {
	m := mesh8()
	defer func() {
		if recover() == nil {
			t.Error("Moves on non-adjacent nodes did not panic")
		}
	}()
	Moves(m, []topology.NodeID{at(m, 0, 0), at(m, 2, 0)})
}

func TestBaseString(t *testing.T) {
	if ECube.String() != "ecube" || WestFirst.String() != "west-first" {
		t.Error("Base names wrong")
	}
}

func TestPathThroughConformancePropertyECubeColumns(t *testing.T) {
	// Property: for any home and any column group on one side of the home
	// row, the e-cube column worm path exists and is conformed.
	m := topology.NewSquareMesh(8)
	prop := func(hx, hy, c uint8, ys [3]uint8) bool {
		home := at(m, int(hx)%8, int(hy)%8)
		col := int(c) % 8
		hyv := int(hy) % 8
		// Build ascending-y waypoints strictly above home row.
		if hyv >= 6 {
			return true // no room above; vacuous
		}
		seen := map[int]bool{}
		var wps []topology.NodeID
		for _, y := range ys {
			yy := hyv + 1 + int(y)%(7-hyv)
			if !seen[yy] {
				seen[yy] = true
				wps = append(wps, at(m, col, yy))
			}
		}
		if len(wps) == 0 {
			return true
		}
		// sort ascending
		for i := 0; i < len(wps); i++ {
			for j := i + 1; j < len(wps); j++ {
				if m.Coord(wps[j]).Y < m.Coord(wps[i]).Y {
					wps[i], wps[j] = wps[j], wps[i]
				}
			}
		}
		if col == m.Coord(home).X && m.Coord(home).Y == m.Coord(wps[0]).Y {
			return true
		}
		path, err := ECube.PathThrough(m, append([]topology.NodeID{home}, wps...))
		return err == nil && ECube.Conforms(Moves(m, path))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConformsPlanarAdaptive(t *testing.T) {
	E, W, N, S := topology.East, topology.West, topology.North, topology.South
	cases := []struct {
		moves []topology.Port
		want  bool
	}{
		{nil, true},
		{[]topology.Port{E, N, E, N, E}, true}, // staircase
		{[]topology.Port{N, E, N, E}, true},    // staircase, Y first
		{[]topology.Port{W, S, W, S}, true},    // opposite diagonal
		{[]topology.Port{E, W}, false},         // X reversal
		{[]topology.Port{N, E, S}, false},      // Y reversal
		{[]topology.Port{E, E, N, N}, true},    // ecube paths conform too
		{[]topology.Port{W, N, W, N}, true},
	}
	for _, tc := range cases {
		if got := PlanarAdaptive.Conforms(tc.moves); got != tc.want {
			t.Errorf("PlanarAdaptive.Conforms(%v) = %v, want %v", tc.moves, got, tc.want)
		}
	}
}

func TestPlanarAdaptiveDiagonalWorm(t *testing.T) {
	// The paper: "a multidestination worm can cover a set of destinations
	// along any diagonal" under planar-adaptive routing.
	m := mesh8()
	home := at(m, 1, 1)
	diag := []topology.NodeID{home, at(m, 2, 2), at(m, 4, 4), at(m, 6, 6)}
	if _, err := ECube.PathThrough(m, diag); err == nil {
		t.Fatal("diagonal should not conform to e-cube")
	}
	path, err := PlanarAdaptive.PathThrough(m, diag)
	if err != nil {
		t.Fatalf("planar-adaptive diagonal failed: %v", err)
	}
	if PathLength(path) != 10 {
		t.Fatalf("diagonal path length = %d, want 10 (minimal)", PathLength(path))
	}
	if !PlanarAdaptive.Conforms(Moves(m, path)) {
		t.Fatal("diagonal path not conformed")
	}
}

func TestPlanarAdaptiveUnicastMinimal(t *testing.T) {
	m := topology.NewSquareMesh(16)
	prop := func(a, b uint8) bool {
		src := topology.NodeID(int(a) % m.Nodes())
		dst := topology.NodeID(int(b) % m.Nodes())
		p := PlanarAdaptive.UnicastPath(m, src, dst)
		return PathLength(p) == m.Distance(src, dst) &&
			PlanarAdaptive.Conforms(Moves(m, p))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanarAdaptiveSupersetOfECube(t *testing.T) {
	// Every e-cube-conformed move sequence conforms to planar-adaptive.
	m := topology.NewSquareMesh(8)
	rng := 0
	for trial := 0; trial < 50; trial++ {
		src := topology.NodeID((trial * 13) % m.Nodes())
		dst := topology.NodeID((trial*29 + 7) % m.Nodes())
		p := ECube.UnicastPath(m, src, dst)
		if !PlanarAdaptive.Conforms(Moves(m, p)) {
			t.Fatalf("ecube path %d not PA-conformed", trial)
		}
		rng++
	}
}

func TestTorusUnicastMinimalProperty(t *testing.T) {
	m := topology.NewTorus(8, 8)
	prop := func(a, b uint8) bool {
		src := topology.NodeID(int(a) % m.Nodes())
		dst := topology.NodeID(int(b) % m.Nodes())
		p := ECube.UnicastPath(m, src, dst)
		return PathLength(p) == m.Distance(src, dst) && ECube.Conforms(Moves(m, p))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusPathThroughRingColumn(t *testing.T) {
	// A worm sweeping a whole column ring: home (1,4), members in column 5
	// at y = 5, 7, 0, 2 (ring order going north from row 4).
	m := topology.NewTorus(8, 8)
	home := at(m, 1, 4)
	wp := []topology.NodeID{home, at(m, 5, 5), at(m, 5, 7), at(m, 5, 0), at(m, 5, 2)}
	path, err := ECube.PathThrough(m, wp)
	if err != nil {
		t.Fatalf("ring column worm failed: %v", err)
	}
	if !ECube.Conforms(Moves(m, path)) {
		t.Fatal("ring path not conformed")
	}
	// 4 row hops + 6 ring hops (y 4 -> 2 going north with wrap).
	if PathLength(path) != 10 {
		t.Fatalf("ring path length = %d, want 10", PathLength(path))
	}
}

func TestTorusWrapHopDirections(t *testing.T) {
	m := topology.NewTorus(8, 8)
	path := []topology.NodeID{at(m, 7, 0), at(m, 0, 0), at(m, 1, 0)}
	moves := Moves(m, path)
	if moves[0] != topology.East || moves[1] != topology.East {
		t.Fatalf("wrap moves = %v, want east east", moves)
	}
}
