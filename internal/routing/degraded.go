package routing

import (
	"fmt"

	"repro/internal/topology"
)

// Degraded routing: path construction that avoids permanently dead links and
// routers while staying base-routing-conformed wherever possible. The healthy
// fast paths (UnicastPath, PathThrough) stay untouched; these entry points are
// consulted only when a hard-fault schedule is active, so a fault-free run
// never pays for them.

// searchPorts fixes the neighbor-expansion order of every degraded-path
// search. The order is part of the deterministic-replay contract: two runs
// with the same dead set must pick the same detours.
var searchPorts = [4]topology.Port{topology.East, topology.West, topology.North, topology.South}

// PathAvoiding returns a base-conformed path from src to dst that crosses no
// dead link, or ok=false when none exists. It searches the product graph of
// (mesh node, conformance-DFA state) breadth-first, so the result is a
// shortest conformed live path; because every returned path conforms to the
// base routing, it uses only turns the healthy channel-dependency graph
// already proves deadlock-free — removing links from an acyclic CDG cannot
// create a cycle.
func (b Base) PathAvoiding(m *topology.Mesh, src, dst topology.NodeID, dead *topology.DeadSet) ([]topology.NodeID, bool) {
	if src == dst {
		return []topology.NodeID{src}, true
	}
	if dead.Empty() {
		return b.UnicastPath(m, src, dst), true
	}
	if dead.RouterDead(src) || dead.RouterDead(dst) {
		return nil, false
	}
	states := b.stateCount()
	size := m.Nodes() * states
	// parent[node*states+state] encodes the predecessor product vertex, or
	// -1 for unvisited and -2 for the BFS root.
	parent := make([]int32, size)
	for i := range parent {
		parent[i] = -1
	}
	start := int(src)*states + int(dfaStart)
	parent[start] = -2
	queue := make([]int32, 0, size)
	queue = append(queue, int32(start))
	for len(queue) > 0 {
		v := int(queue[0])
		queue = queue[1:]
		node := topology.NodeID(v / states)
		st := dfaState(v % states)
		for _, mv := range searchPorts {
			next, ok := m.Neighbor(node, mv)
			if !ok || dead.LinkDead(node, next) {
				continue
			}
			ns := b.step(st, mv)
			if ns == dfaFail {
				continue
			}
			w := int(next)*states + int(ns)
			if parent[w] != -1 {
				continue
			}
			parent[w] = int32(v)
			if next == dst {
				return reconstruct(parent, w, states), true
			}
			queue = append(queue, int32(w))
		}
	}
	return nil, false
}

// reconstruct walks the parent chain of a product-graph BFS back to the root
// and returns the node path in forward order.
func reconstruct(parent []int32, end, states int) []topology.NodeID {
	var rev []topology.NodeID
	for v := end; v != -2; v = int(parent[v]) {
		rev = append(rev, topology.NodeID(v/states))
	}
	path := make([]topology.NodeID, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path
}

// livePath returns a shortest path from src to dst over live links with no
// conformance constraint, or ok=false when the live fabric disconnects the
// pair. RelayRoute uses it as the fallback skeleton when no single conformed
// path survives.
func livePath(m *topology.Mesh, src, dst topology.NodeID, dead *topology.DeadSet) ([]topology.NodeID, bool) {
	if src == dst {
		return []topology.NodeID{src}, true
	}
	if dead.RouterDead(src) || dead.RouterDead(dst) {
		return nil, false
	}
	parent := make([]int32, m.Nodes())
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = -2
	queue := make([]topology.NodeID, 0, m.Nodes())
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, mv := range searchPorts {
			next, ok := m.Neighbor(v, mv)
			if !ok || dead.LinkDead(v, next) || parent[next] != -1 {
				continue
			}
			parent[next] = int32(v)
			if next == dst {
				return reconstruct(parent, int(next), 1), true
			}
			queue = append(queue, next)
		}
	}
	return nil, false
}

// conformedPrefix returns the longest prefix of path (which must start fresh,
// i.e. from an injection point) that the base routing's conformance DFA
// accepts. The first hop of any path conforms from the start state under all
// three bases, so the prefix always makes at least one hop of progress.
func (b Base) conformedPrefix(m *topology.Mesh, path []topology.NodeID) []topology.NodeID {
	s := dfaStart
	for i := 1; i < len(path); i++ {
		s = b.step(s, hopDir(m, path[i-1], path[i]))
		if s == dfaFail {
			return path[:i]
		}
	}
	return path
}

// RelayRoute plans a multi-leg route from src to dst across the degraded
// fabric: a sequence of legs, each individually base-conformed and crossing
// no dead link, where the head of each leg is the tail of the previous one.
// A worm travels one leg at a time; at each intermediate relay node the
// message is consumed and re-injected (store-and-forward at the pivot), which
// resets the conformance DFA and breaks any channel dependency between legs —
// the same argument that makes UMC-style tree forwarding deadlock-free. The
// common case is a single leg (PathAvoiding succeeded); relays appear only
// when the dead set severs every conformed path.
//
// ok=false means dst is unreachable on the live fabric (its router died or
// the failure disconnected it), which the fault layer's connectivity-
// preserving victim selection rules out for router-alive endpoints.
func (b Base) RelayRoute(m *topology.Mesh, src, dst topology.NodeID, dead *topology.DeadSet) ([][]topology.NodeID, bool) {
	if src == dst {
		return [][]topology.NodeID{{src}}, true
	}
	var legs [][]topology.NodeID
	cur := src
	for cur != dst {
		if leg, ok := b.PathAvoiding(m, cur, dst, dead); ok {
			return append(legs, leg), true
		}
		skel, ok := livePath(m, cur, dst, dead)
		if !ok {
			return nil, false
		}
		// Take the maximal conformed prefix as one leg; the next iteration
		// replans from its tail with a fresh DFA. Each leg shortens the
		// remaining shortest-path distance by at least one hop, so the loop
		// terminates.
		leg := b.conformedPrefix(m, skel)
		legs = append(legs, leg)
		cur = leg[len(leg)-1]
	}
	return legs, true
}

// PathThroughAvoiding is PathThrough restricted to legs whose materialized
// hops cross no dead link: the degraded re-realization used when a grouping
// scheme tries to keep a multidestination group together around a failure.
// It returns an error when no conformed live path visits the waypoints in
// order; callers fall back to splitting the group.
func (b Base) PathThroughAvoiding(m *topology.Mesh, waypoints []topology.NodeID, dead *topology.DeadSet) ([]topology.NodeID, error) {
	if dead.Empty() {
		return b.PathThrough(m, waypoints)
	}
	if len(waypoints) == 0 {
		return nil, fmt.Errorf("routing: empty waypoint list")
	}
	for _, w := range waypoints {
		if dead.RouterDead(w) {
			return nil, fmt.Errorf("routing: waypoint %v sits behind a dead router", m.Coord(w))
		}
	}
	if len(waypoints) == 1 {
		return []topology.NodeID{waypoints[0]}, nil
	}
	nLegs := len(waypoints) - 1
	states := b.stateCount()
	deadMemo := make([][]bool, nLegs)
	for i := range deadMemo {
		deadMemo[i] = make([]bool, states)
	}
	chosen := make([]legOpt, nLegs)

	var dfs func(leg int, s dfaState) bool
	dfs = func(leg int, s dfaState) bool {
		if leg == nLegs {
			return true
		}
		if deadMemo[leg][s] {
			return false
		}
		for _, opt := range legOptions(m, waypoints[leg], waypoints[leg+1]) {
			if !legLive(m, waypoints[leg], opt, dead) {
				continue
			}
			ns := b.runLeg(s, opt)
			if ns == dfaFail {
				continue
			}
			if dfs(leg+1, ns) {
				chosen[leg] = opt
				return true
			}
		}
		deadMemo[leg][s] = true
		return false
	}
	if !dfs(0, dfaStart) {
		return nil, fmt.Errorf("routing: no %v-conformed live path through %d waypoints from %v",
			b, len(waypoints), m.Coord(waypoints[0]))
	}

	path := []topology.NodeID{waypoints[0]}
	for leg := 0; leg < nLegs; leg++ {
		path = appendLeg(m, path, waypoints[leg], chosen[leg])
	}
	return path, nil
}

// legLive reports whether a leg realization's concrete hop sequence crosses
// only live links, walking the same hops appendLeg would materialize.
func legLive(m *topology.Mesh, a topology.NodeID, opt legOpt, dead *topology.DeadSet) bool {
	order := [2]struct {
		mv topology.Port
		n  int
	}{{opt.xPort, opt.xHops}, {opt.yPort, opt.yHops}}
	if opt.shape == shapeYX {
		order[0], order[1] = order[1], order[0]
	}
	cur := a
	for _, run := range order {
		for i := 0; i < run.n; i++ {
			next, ok := m.Neighbor(cur, run.mv)
			if !ok {
				panic("routing: leg fell off mesh")
			}
			if dead.LinkDead(cur, next) {
				return false
			}
			cur = next
		}
	}
	return true
}
