package routing

import (
	"testing"

	"repro/internal/topology"
)

// TestExhaustiveUnicastAllPairsAllBases checks, for every (src, dst) pair
// on a 5x5 mesh and every base routing, that the unicast path is minimal,
// endpoint-correct, hop-contiguous and conformed.
func TestExhaustiveUnicastAllPairsAllBases(t *testing.T) {
	m := topology.NewMesh(5, 5)
	for _, base := range []Base{ECube, WestFirst, PlanarAdaptive} {
		for src := topology.NodeID(0); int(src) < m.Nodes(); src++ {
			for dst := topology.NodeID(0); int(dst) < m.Nodes(); dst++ {
				p := base.UnicastPath(m, src, dst)
				if p[0] != src || p[len(p)-1] != dst {
					t.Fatalf("%v %d->%d: endpoints wrong", base, src, dst)
				}
				if PathLength(p) != m.Distance(src, dst) {
					t.Fatalf("%v %d->%d: length %d, want %d", base, src, dst,
						PathLength(p), m.Distance(src, dst))
				}
				if !base.Conforms(Moves(m, p)) {
					t.Fatalf("%v %d->%d: path not conformed", base, src, dst)
				}
			}
		}
	}
}

// TestExhaustiveUnicastTorus does the same over a 5x5 torus for e-cube.
func TestExhaustiveUnicastTorus(t *testing.T) {
	m := topology.NewTorus(5, 5)
	for src := topology.NodeID(0); int(src) < m.Nodes(); src++ {
		for dst := topology.NodeID(0); int(dst) < m.Nodes(); dst++ {
			p := ECube.UnicastPath(m, src, dst)
			if PathLength(p) != m.Distance(src, dst) {
				t.Fatalf("torus %d->%d: length %d, want %d", src, dst,
					PathLength(p), m.Distance(src, dst))
			}
			if !ECube.Conforms(Moves(m, p)) {
				t.Fatalf("torus %d->%d: not conformed", src, dst)
			}
		}
	}
}

// TestExhaustivePathThroughPairs checks every (home, a, b) waypoint triple
// on a 4x4 mesh: whenever PathThrough succeeds its path must be conformed
// and visit the waypoints in order; and under planar-adaptive (which
// covers any single dominance pair) a two-waypoint chain in one quadrant
// must always succeed.
func TestExhaustivePathThroughPairs(t *testing.T) {
	m := topology.NewMesh(4, 4)
	for home := topology.NodeID(0); int(home) < m.Nodes(); home++ {
		for a := topology.NodeID(0); int(a) < m.Nodes(); a++ {
			for b := topology.NodeID(0); int(b) < m.Nodes(); b++ {
				if a == home || b == home || a == b {
					continue
				}
				for _, base := range []Base{ECube, WestFirst, PlanarAdaptive} {
					path, err := base.PathThrough(m, []topology.NodeID{home, a, b})
					if err != nil {
						continue
					}
					if !base.Conforms(Moves(m, path)) {
						t.Fatalf("%v via %d,%d: accepted non-conformed path", base, a, b)
					}
					idx := 0
					wps := []topology.NodeID{home, a, b}
					for _, nd := range path {
						if idx < len(wps) && nd == wps[idx] {
							idx++
						}
					}
					if idx != len(wps) {
						t.Fatalf("%v via %d,%d: waypoints not visited in order", base, a, b)
					}
				}
				// Planar-adaptive completeness on dominance chains.
				hc, ca, cb := m.Coord(home), m.Coord(a), m.Coord(b)
				if dominates(hc, ca) && dominates(ca, cb) {
					if _, err := PlanarAdaptive.PathThrough(m, []topology.NodeID{home, a, b}); err != nil {
						t.Fatalf("planar-adaptive rejected dominance chain %v %v %v", hc, ca, cb)
					}
				}
			}
		}
	}
}

// dominates reports p <= q in the NE dominance order.
func dominates(p, q topology.Coord) bool {
	return q.X >= p.X && q.Y >= p.Y
}

// TestExhaustiveECubeCompleteness: e-cube must accept exactly the
// waypoint pairs forming a row-then-column progression.
func TestExhaustiveECubeCompleteness(t *testing.T) {
	m := topology.NewMesh(4, 4)
	home := m.ID(topology.Coord{X: 0, Y: 0})
	for a := topology.NodeID(0); int(a) < m.Nodes(); a++ {
		if a == home {
			continue
		}
		// A single destination must always work under every base.
		for _, base := range []Base{ECube, WestFirst, PlanarAdaptive} {
			if _, err := base.PathThrough(m, []topology.NodeID{home, a}); err != nil {
				t.Fatalf("%v rejected single destination %v", base, m.Coord(a))
			}
		}
	}
}
