package routing

import (
	"testing"

	"repro/internal/topology"
)

func allBases() []Base { return []Base{ECube, WestFirst, PlanarAdaptive} }

// checkPath asserts path runs src->dst over live neighbor links and conforms.
func checkPath(t *testing.T, b Base, m *topology.Mesh, path []topology.NodeID,
	src, dst topology.NodeID, dead *topology.DeadSet) {
	t.Helper()
	if len(path) == 0 || path[0] != src || path[len(path)-1] != dst {
		t.Fatalf("%v: path %v does not run %v->%v", b, path, src, dst)
	}
	for i := 1; i < len(path); i++ {
		if dead.LinkDead(path[i-1], path[i]) {
			t.Fatalf("%v: path %v crosses dead link %v-%v", b, path, path[i-1], path[i])
		}
	}
	if !b.Conforms(Moves(m, path)) {
		t.Fatalf("%v: path %v does not conform", b, path)
	}
}

func TestPathAvoidingEmptyDeadMatchesUnicast(t *testing.T) {
	m := topology.NewSquareMesh(4)
	for _, b := range allBases() {
		for src := 0; src < m.Nodes(); src++ {
			for dst := 0; dst < m.Nodes(); dst++ {
				s, d := topology.NodeID(src), topology.NodeID(dst)
				got, ok := b.PathAvoiding(m, s, d, nil)
				if !ok {
					t.Fatalf("%v: no path %v->%v on healthy mesh", b, s, d)
				}
				want := b.UnicastPath(m, s, d)
				if len(got) != len(want) {
					t.Fatalf("%v: healthy PathAvoiding %v->%v = %v, want base path %v", b, s, d, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%v: healthy PathAvoiding %v->%v = %v, want base path %v", b, s, d, got, want)
					}
				}
			}
		}
	}
}

func TestPathAvoidingDetours(t *testing.T) {
	m := topology.NewSquareMesh(4)
	// Kill the east link out of node 0 (0-1). The adaptive bases can detour
	// within one conformed path (e.g. north, east, ... for west-first; any
	// monotone staircase for planar-adaptive reaches the upper-right block).
	dead := topology.NewDeadSet()
	dead.AddLink(0, 1)
	path, ok := WestFirst.PathAvoiding(m, 0, 3, dead)
	if !ok {
		t.Fatal("west-first: no live conformed path 0->3 with 0-1 dead")
	}
	checkPath(t, WestFirst, m, path, 0, 3, dead)
	path, ok = PlanarAdaptive.PathAvoiding(m, 0, 7, dead)
	if !ok {
		t.Fatal("planar-adaptive: no live conformed path 0->7 with 0-1 dead")
	}
	checkPath(t, PlanarAdaptive, m, path, 0, 7, dead)
	// ECube's X-then-Y discipline cannot express the up-over-down detour for
	// a same-row destination: PathAvoiding must report failure (RelayRoute
	// handles the pair with a pivot).
	if _, ok := ECube.PathAvoiding(m, 0, 1, dead); ok {
		t.Fatal("ecube: unexpected single conformed path 0->1 with 0-1 dead")
	}
}

func TestPathAvoidingDeadRouterUnreachable(t *testing.T) {
	m := topology.NewSquareMesh(4)
	dead := topology.NewDeadSet()
	dead.AddRouter(5)
	for _, b := range allBases() {
		if _, ok := b.PathAvoiding(m, 0, 5, dead); ok {
			t.Fatalf("%v: found a path to a dead router", b)
		}
		if _, ok := b.PathAvoiding(m, 5, 0, dead); ok {
			t.Fatalf("%v: found a path from a dead router", b)
		}
		// Other pairs still route around the hole, via relays if the base's
		// conformance cannot express the detour in one worm.
		legs, ok := b.RelayRoute(m, 4, 6, dead)
		if !ok {
			t.Fatalf("%v: 4->6 unreachable around dead router 5", b)
		}
		cur := topology.NodeID(4)
		for _, leg := range legs {
			checkPath(t, b, m, leg, cur, leg[len(leg)-1], dead)
			cur = leg[len(leg)-1]
		}
		if cur != 6 {
			t.Fatalf("%v: relay legs end at %v, want 6", b, cur)
		}
	}
}

// Corner trap: kill links so that every conformed path from the corner is
// severed for ECube, forcing RelayRoute to emit multiple legs for at least
// some pair, while each leg stays individually conformed and live.
func TestRelayRouteCoversAllLivePairs(t *testing.T) {
	m := topology.NewSquareMesh(4)
	dead := topology.NewDeadSet()
	// 4x4 row-major: node 1 = (1,0), node 5 = (1,1).
	dead.AddLink(1, 2)  // (1,0)-(2,0)
	dead.AddLink(5, 6)  // (1,1)-(2,1)
	dead.AddLink(9, 10) // (1,2)-(2,2): only row 3 crosses the cut
	for _, b := range allBases() {
		for src := 0; src < m.Nodes(); src++ {
			for dst := 0; dst < m.Nodes(); dst++ {
				s, d := topology.NodeID(src), topology.NodeID(dst)
				legs, ok := b.RelayRoute(m, s, d, dead)
				if !ok {
					t.Fatalf("%v: RelayRoute %v->%v failed on connected degraded mesh", b, s, d)
				}
				cur := s
				for _, leg := range legs {
					checkPath(t, b, m, leg, cur, leg[len(leg)-1], dead)
					cur = leg[len(leg)-1]
				}
				if cur != d {
					t.Fatalf("%v: RelayRoute %v->%v legs end at %v", b, s, d, cur)
				}
			}
		}
	}
}

func TestRelayRouteNeedsRelayForEcubeTrap(t *testing.T) {
	// ECube conformance (X then Y) cannot express "go up, cross, come down",
	// so cutting all eastward row crossings except one forces a relay when
	// src and dst sit on opposite sides in a severed row.
	m := topology.NewSquareMesh(4)
	dead := topology.NewDeadSet()
	dead.AddLink(1, 2)
	dead.AddLink(5, 6)
	dead.AddLink(9, 10)
	legs, ok := ECube.RelayRoute(m, 0, 3, dead)
	if !ok {
		t.Fatal("ecube: RelayRoute 0->3 failed")
	}
	if len(legs) < 2 {
		t.Fatalf("ecube: expected a multi-leg relay 0->3 across the cut, got %d leg(s): %v", len(legs), legs)
	}
}

func TestPathThroughAvoidingRerealizesAroundDeadLink(t *testing.T) {
	m := topology.NewSquareMesh(4)
	for _, b := range allBases() {
		waypoints := []topology.NodeID{0, 4, 8, 12} // west column, south to north
		healthy, err := b.PathThrough(m, waypoints)
		if err != nil {
			t.Fatalf("%v: healthy PathThrough: %v", b, err)
		}
		// Empty dead set must reproduce the healthy choice.
		same, err := b.PathThroughAvoiding(m, waypoints, nil)
		if err != nil {
			t.Fatalf("%v: PathThroughAvoiding(nil): %v", b, err)
		}
		if len(same) != len(healthy) {
			t.Fatalf("%v: PathThroughAvoiding(nil) = %v, want %v", b, same, healthy)
		}
		// Kill a link on the column: the straight realization dies; the
		// waypoint sequence itself is no longer realizable with one conformed
		// worm (column legs have exactly one realization), so an error is the
		// contract — callers split the group.
		dead := topology.NewDeadSet()
		dead.AddLink(4, 8)
		if _, err := b.PathThroughAvoiding(m, waypoints, dead); err == nil {
			t.Fatalf("%v: expected error re-realizing a severed column", b)
		}
	}
}

func TestPathThroughAvoidingPicksLiveRealization(t *testing.T) {
	// A diagonal leg has XY and YX realizations; killing a link on the XY one
	// must steer the search to YX where the base allows it.
	m := topology.NewSquareMesh(4)
	dead := topology.NewDeadSet()
	dead.AddLink(0, 1) // kills XY realization of 0 -> 5
	waypoints := []topology.NodeID{0, 5}
	for _, b := range []Base{WestFirst, PlanarAdaptive} {
		path, err := b.PathThroughAvoiding(m, waypoints, dead)
		if err != nil {
			t.Fatalf("%v: PathThroughAvoiding: %v", b, err)
		}
		checkPath(t, b, m, path, 0, 5, dead)
	}
	// ECube from the start state may also go Y-then-X (a Y run then X run is
	// not XY-conformed; dfaStart->North->East fails), so ECube must error.
	if _, err := ECube.PathThroughAvoiding(m, waypoints, dead); err == nil {
		t.Fatal("ecube: expected no live conformed realization of 0->5 with 0-1 dead")
	}
}
