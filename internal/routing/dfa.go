package routing

import "repro/internal/topology"

// DFA exposes a base routing's conformance automaton to analysis tooling
// (the channel-dependency-graph verifier in internal/analysis/cdg). The
// automaton accepts exactly the hop-direction sequences Conforms accepts:
// every state is accepting and a sequence conforms iff it never transitions
// to the failure state.
type DFA struct{ b Base }

// DFA returns the base routing's conformance automaton.
func (b Base) DFA() DFA { return DFA{b: b} }

// States returns the number of non-failure states. States are numbered
// 0..States()-1; Start() is always a valid state.
func (d DFA) States() int { return d.b.stateCount() }

// Start returns the automaton's initial state.
func (d DFA) Start() int { return int(dfaStart) }

// Step advances the automaton by one hop direction. ok is false when the
// move is not conformable from s (the failure state); the returned state is
// then meaningless.
func (d DFA) Step(s int, mv topology.Port) (next int, ok bool) {
	ns := d.b.step(dfaState(s), mv)
	if ns == dfaFail {
		return 0, false
	}
	return int(ns), true
}
