// Package routing implements the base unicast routing schemes of the paper
// (deterministic e-cube / XY and the west-first turn model) together with
// the BRCP (Base-Routing-Conformed-Path) machinery: constructing and
// validating the paths multidestination worms follow.
//
// Under the BRCP model a multidestination worm must traverse a path that the
// base unicast routing could itself have produced; this is what lets the
// worms share the base routing's deadlock-freedom proof without extra
// virtual channels. For e-cube XY routing a conformed path is a monotone
// run of X hops followed by a monotone run of Y hops. For west-first, all
// westward hops must precede every other hop, and the path may thereafter
// mix {east, north, south} hops freely as long as it never makes a 180
// degree reversal.
package routing

import (
	"fmt"

	"repro/internal/topology"
)

// Base selects a base unicast routing scheme.
type Base int

const (
	// ECube is deterministic dimension-ordered XY routing [6].
	ECube Base = iota
	// WestFirst is the west-first turn model [15]: a packet makes all its
	// westward hops first and thereafter routes adaptively among east,
	// north and south.
	WestFirst
	// PlanarAdaptive is planar-adaptive routing [5]: within the 2-D plane a
	// packet may take any minimal path, so a conformed path is any
	// monotone staircase (at most one direction per dimension, freely
	// interleaved) — which lets one multidestination worm cover a set of
	// destinations along any diagonal, as the paper observes.
	PlanarAdaptive
)

func (b Base) String() string {
	switch b {
	case ECube:
		return "ecube"
	case WestFirst:
		return "west-first"
	case PlanarAdaptive:
		return "planar-adaptive"
	}
	return fmt.Sprintf("base(%d)", int(b))
}

// NextPort returns the output port the base routing uses at cur to advance
// toward dst, or topology.Local when cur == dst.
//
// Both schemes are simulated deterministically: e-cube is deterministic by
// definition, and for west-first we fix the canonical minimal choice
// (west hops first, then east, then the Y dimension), which is one of the
// routes the adaptive router is permitted to take. The turn model's
// *adaptivity* is exploited where the paper exploits it: in the extra
// multidestination paths that PathThrough admits.
func (b Base) NextPort(m *topology.Mesh, cur, dst topology.NodeID) topology.Port {
	cc, cd := m.Coord(cur), m.Coord(dst)
	switch b {
	case ECube, PlanarAdaptive:
		// Planar-adaptive permits any minimal path; the canonical
		// deterministic choice is dimension order, which conforms.
		if cc.X != cd.X {
			return m.PortToward(cur, dst, 'x')
		}
		if cc.Y != cd.Y {
			return m.PortToward(cur, dst, 'y')
		}
		return topology.Local
	case WestFirst:
		if cd.X < cc.X {
			return topology.West
		}
		if cd.X > cc.X {
			return topology.East
		}
		if cc.Y != cd.Y {
			return m.PortToward(cur, dst, 'y')
		}
		return topology.Local
	}
	panic("routing: unknown base " + b.String())
}

// UnicastPath returns the node sequence (inclusive of src and dst) the base
// routing takes from src to dst.
func (b Base) UnicastPath(m *topology.Mesh, src, dst topology.NodeID) []topology.NodeID {
	return b.UnicastPathInto(nil, m, src, dst)
}

// UnicastPathInto appends the base path from src to dst (inclusive of both)
// to buf and returns the result, letting callers reuse a path buffer across
// sends instead of allocating one per worm.
func (b Base) UnicastPathInto(buf []topology.NodeID, m *topology.Mesh, src, dst topology.NodeID) []topology.NodeID {
	path := append(buf, src)
	cur := src
	for cur != dst {
		p := b.NextPort(m, cur, dst)
		next, ok := m.Neighbor(cur, p)
		if !ok {
			panic(fmt.Sprintf("routing: %v fell off mesh at %v toward %v", b, m.Coord(cur), m.Coord(dst)))
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// Moves converts a node path into its sequence of hop directions.
// It panics if consecutive nodes are not mesh neighbors.
func Moves(m *topology.Mesh, path []topology.NodeID) []topology.Port {
	if len(path) < 2 {
		return nil
	}
	moves := make([]topology.Port, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		moves = append(moves, hopDir(m, path[i-1], path[i]))
	}
	return moves
}

func hopDir(m *topology.Mesh, from, to topology.NodeID) topology.Port {
	cf, ct := m.Coord(from), m.Coord(to)
	dx, dy := ct.X-cf.X, ct.Y-cf.Y
	if m.Wrap() {
		// Normalize wraparound hops to unit steps.
		if dx == -(m.Width() - 1) {
			dx = 1
		} else if dx == m.Width()-1 {
			dx = -1
		}
		if dy == -(m.Height() - 1) {
			dy = 1
		} else if dy == m.Height()-1 {
			dy = -1
		}
	}
	switch {
	case dx == 1 && dy == 0:
		return topology.East
	case dx == -1 && dy == 0:
		return topology.West
	case dx == 0 && dy == 1:
		return topology.North
	case dx == 0 && dy == -1:
		return topology.South
	}
	panic(fmt.Sprintf("routing: %v -> %v is not a single hop", cf, ct))
}

// Conformance is modelled as a tiny DFA per base routing: a path conforms
// iff the DFA accepts its move sequence. The DFA state also drives the
// backtracking search in PathThrough.
type dfaState int8

const (
	dfaStart dfaState = iota
	dfaWest           // west-first only: still in the initial westward phase
	dfaEast
	dfaNorth
	dfaSouth
	dfaFail = dfaState(-1)
)

// stateCount returns the size of the base routing's conformance DFA.
func (b Base) stateCount() int {
	if b == PlanarAdaptive {
		// (x direction: unset/E/W) x (y direction: unset/N/S).
		return 9
	}
	return 5
}

// step advances the conformance DFA by one hop direction.
func (b Base) step(s dfaState, mv topology.Port) dfaState {
	if s == dfaFail {
		return dfaFail
	}
	switch b {
	case PlanarAdaptive:
		// State packs (xdir, ydir); a move must match or set its
		// dimension's direction (monotone staircase).
		x, y := int(s)/3, int(s)%3
		switch mv {
		case topology.East:
			if x == 2 {
				return dfaFail
			}
			x = 1
		case topology.West:
			if x == 1 {
				return dfaFail
			}
			x = 2
		case topology.North:
			if y == 2 {
				return dfaFail
			}
			y = 1
		case topology.South:
			if y == 1 {
				return dfaFail
			}
			y = 2
		case topology.Local:
			return dfaFail // not a network hop
		default:
			return dfaFail
		}
		return dfaState(x*3 + y)
	case ECube:
		//simcheck:allow exhaustive -- dfaFail is rejected at function entry
		switch s {
		case dfaStart:
			return dirState(mv)
		case dfaEast, dfaWest:
			// X run may continue in the same direction or turn into a Y run.
			if dirState(mv) == s || mv == topology.North || mv == topology.South {
				return dirState(mv)
			}
		case dfaNorth, dfaSouth:
			if dirState(mv) == s {
				return s
			}
		}
		return dfaFail
	case WestFirst:
		//simcheck:allow exhaustive -- dfaFail is rejected at function entry
		switch s {
		case dfaStart:
			return dirState(mv) // any first move is legal
		case dfaWest:
			// Still in the westward phase: continue west or turn off it —
			// but never reverse 180 degrees into an eastward hop, which no
			// base west-first route produces.
			if mv != topology.East {
				return dirState(mv)
			}
		case dfaEast:
			if mv != topology.West {
				return dirState(mv)
			}
		case dfaNorth:
			if mv == topology.North || mv == topology.East {
				return dirState(mv)
			}
		case dfaSouth:
			if mv == topology.South || mv == topology.East {
				return dirState(mv)
			}
		}
		return dfaFail
	}
	panic("routing: unknown base " + b.String())
}

func dirState(mv topology.Port) dfaState {
	switch mv {
	case topology.East:
		return dfaEast
	case topology.West:
		return dfaWest
	case topology.North:
		return dfaNorth
	case topology.South:
		return dfaSouth
	case topology.Local:
		return dfaFail // not a direction
	}
	return dfaFail
}

// Conforms reports whether a hop-direction sequence is a path the base
// routing could produce (the BRCP validity condition).
func (b Base) Conforms(moves []topology.Port) bool {
	s := dfaStart
	for _, mv := range moves {
		s = b.step(s, mv)
		if s == dfaFail {
			return false
		}
	}
	return true
}

// legShape is one way to realize a leg between consecutive waypoints.
type legShape int8

const (
	shapeXY legShape = iota // all X hops, then all Y hops
	shapeYX                 // all Y hops, then all X hops
)

// legOpt is one concrete realization of a leg: a shape plus an explicit
// direction and hop count per dimension. Meshes admit one direction per
// dimension; tori admit both ways around each ring.
type legOpt struct {
	shape        legShape
	xPort, yPort topology.Port
	xHops, yHops int
}

// PathThrough builds the full node path of a multidestination worm that
// starts at waypoints[0] and visits the remaining waypoints in order,
// choosing for every leg between the X-then-Y and Y-then-X realization so
// that the *concatenated* path conforms to the base routing (BRCP). The
// Y-then-X option is what lets a west-first worm snake boustrophedon-style
// across columns (the N->E, E->S, S->E, E->N turns are all legal under the
// turn model).
//
// It returns an error when the waypoint sequence admits no conformed path;
// callers (the grouping schemes) treat that as "this set needs another
// worm". The search is a DFS over leg shapes memoized on (leg index, DFA
// state), so it runs in O(legs x states).
func (b Base) PathThrough(m *topology.Mesh, waypoints []topology.NodeID) ([]topology.NodeID, error) {
	if len(waypoints) == 0 {
		return nil, fmt.Errorf("routing: empty waypoint list")
	}
	if len(waypoints) == 1 {
		return []topology.NodeID{waypoints[0]}, nil
	}
	nLegs := len(waypoints) - 1
	// dead[i][s] records that no completion exists from waypoint i in DFA
	// state s.
	states := b.stateCount()
	dead := make([][]bool, nLegs)
	for i := range dead {
		dead[i] = make([]bool, states)
	}
	chosen := make([]legOpt, nLegs)

	var dfs func(leg int, s dfaState) bool
	dfs = func(leg int, s dfaState) bool {
		if leg == nLegs {
			return true
		}
		if dead[leg][s] {
			return false
		}
		for _, opt := range legOptions(m, waypoints[leg], waypoints[leg+1]) {
			ns := b.runLeg(s, opt)
			if ns == dfaFail {
				continue
			}
			if dfs(leg+1, ns) {
				chosen[leg] = opt
				return true
			}
		}
		dead[leg][s] = true
		return false
	}
	if !dfs(0, dfaStart) {
		return nil, fmt.Errorf("routing: no %v-conformed path through %d waypoints from %v",
			b, len(waypoints), m.Coord(waypoints[0]))
	}

	path := []topology.NodeID{waypoints[0]}
	for leg := 0; leg < nLegs; leg++ {
		path = appendLeg(m, path, waypoints[leg], chosen[leg])
	}
	return path, nil
}

// legOptions enumerates a leg's concrete realizations: shape order times,
// on a torus, the two ways around each ring. Shorter-direction candidates
// come first so the DFS prefers minimal legs.
func legOptions(m *topology.Mesh, a, bn topology.NodeID) []legOpt {
	ca, cb := m.Coord(a), m.Coord(bn)
	xs := dimChoices(ca.X, cb.X, m.Width(), topology.East, topology.West, m.Wrap())
	ys := dimChoices(ca.Y, cb.Y, m.Height(), topology.North, topology.South, m.Wrap())
	shapes := []legShape{shapeXY, shapeYX}
	if ca.X == cb.X || ca.Y == cb.Y {
		shapes = shapes[:1]
	}
	var out []legOpt
	for _, sh := range shapes {
		for _, x := range xs {
			for _, y := range ys {
				out = append(out, legOpt{shape: sh,
					xPort: x.port, xHops: x.hops, yPort: y.port, yHops: y.hops})
			}
		}
	}
	return out
}

type dimChoice struct {
	port topology.Port
	hops int
}

// dimChoices returns the ways to cover one dimension's offset: the direct
// direction on a mesh, both ring directions (shortest first) on a torus.
func dimChoices(from, to, size int, fwd, bwd topology.Port, wrap bool) []dimChoice {
	if from == to {
		return []dimChoice{{port: fwd, hops: 0}}
	}
	if !wrap {
		if to > from {
			return []dimChoice{{port: fwd, hops: to - from}}
		}
		return []dimChoice{{port: bwd, hops: from - to}}
	}
	f := (to - from + size) % size
	choices := []dimChoice{{port: fwd, hops: f}, {port: bwd, hops: size - f}}
	if choices[1].hops < choices[0].hops {
		choices[0], choices[1] = choices[1], choices[0]
	}
	return choices
}

// runLeg advances the DFA across one leg realization without materializing
// the path.
func (b Base) runLeg(s dfaState, opt legOpt) dfaState {
	order := [2]struct {
		mv topology.Port
		n  int
	}{{opt.xPort, opt.xHops}, {opt.yPort, opt.yHops}}
	if opt.shape == shapeYX {
		order[0], order[1] = order[1], order[0]
	}
	for _, run := range order {
		for i := 0; i < run.n; i++ {
			s = b.step(s, run.mv)
			if s == dfaFail {
				return dfaFail
			}
		}
	}
	return s
}

// appendLeg extends path (currently ending at a) with the nodes of the leg
// realization, excluding a itself.
func appendLeg(m *topology.Mesh, path []topology.NodeID, a topology.NodeID, opt legOpt) []topology.NodeID {
	order := [2]struct {
		mv topology.Port
		n  int
	}{{opt.xPort, opt.xHops}, {opt.yPort, opt.yHops}}
	if opt.shape == shapeYX {
		order[0], order[1] = order[1], order[0]
	}
	cur := a
	for _, run := range order {
		for i := 0; i < run.n; i++ {
			next, ok := m.Neighbor(cur, run.mv)
			if !ok {
				panic("routing: leg fell off mesh")
			}
			path = append(path, next)
			cur = next
		}
	}
	return path
}

// PathLength returns the number of hops in a node path.
func PathLength(path []topology.NodeID) int {
	if len(path) == 0 {
		return 0
	}
	return len(path) - 1
}
