package oracle

import (
	"fmt"
	"math/bits"

	"repro/internal/grouping"
)

// succ is one enabled transition out of a state.
type succ struct {
	action string
	next   mstate
}

// successors enumerates every enabled transition of st in a fixed,
// deterministic order: processor issues, then message deliveries in
// canonical message order, then i-ack posts, the home's local invalidation,
// timeouts, and finally fault events. The enumeration order only affects
// which counterexample is found first, never what is reachable.
func (md *model) successors(st *mstate) []succ {
	var out []succ
	add := func(action string, ns mstate) {
		out = append(out, succ{action, ns})
	}

	// Processor issues. Cache hits (reads of a valid line, writes of a
	// Modified line) are invisible to the protocol and are not modeled.
	for n := 0; n < md.nodes; n++ {
		if st.op[n].active || int(st.used[n]) >= md.cfg.OpsPerNode {
			continue
		}
		for b := 0; b < md.cfg.Blocks; b++ {
			if st.cache[n][b] == lineI {
				ns := st.clone()
				ns.op[n] = mop{active: true, write: false, block: uint8(b)}
				ns.used[n]++
				ns.addMsg(mmsg{typ: mReadReq, from: uint8(n), to: md.homeOf[b], block: uint8(b)})
				add(fmt.Sprintf("node %d issues read of block %d", n, b), ns)
			}
			if st.cache[n][b] != lineM {
				ns := st.clone()
				ns.op[n] = mop{active: true, write: true, block: uint8(b)}
				ns.used[n]++
				ns.addMsg(mmsg{typ: mWriteReq, from: uint8(n), to: md.homeOf[b], block: uint8(b)})
				add(fmt.Sprintf("node %d issues write of block %d", n, b), ns)
			}
		}
	}

	// Message deliveries. st.msgs is already in canonical order (states are
	// decoded from canonical keys), so index order is deterministic.
	for i := range st.msgs {
		m := st.msgs[i]
		switch m.typ {
		case mReadReq, mWriteReq:
			b := int(m.block)
			if st.txn[b].active || st.dir[b].fetch {
				continue // the home's per-block queue holds the request
			}
			ns := st.clone()
			ns.removeMsg(i)
			md.deliverRequest(&ns, m)
			add(fmt.Sprintf("home processes %s", md.formatMsg(&m)), ns)

		case mInval:
			if op := st.op[m.to]; !m.retry && op.active && !op.write && op.block == m.block {
				// Directory-targeted invalidation racing the node's own
				// fill: the home snapshotted the node from the presence
				// bits, so its read was served and the fill is in flight —
				// defer the invalidation (and the ack) past it, mirroring
				// sharerInval. Retries cannot defer: they may catch a node
				// whose re-request is queued behind this very transaction.
				ns := st.clone()
				ns.removeMsg(i)
				ns.op[m.to].dinval = true
				ns.op[m.to].depoch = m.epoch
				add(fmt.Sprintf("node %d defers %s past its in-flight fill",
					m.to, md.formatMsg(&m)), ns)
				continue
			}
			ns := st.clone()
			ns.removeMsg(i)
			md.invalidateAt(&ns, int(m.to), m.block)
			ns.addMsg(mmsg{typ: mInvalAck, from: m.to, to: md.homeOf[m.block],
				block: m.block, epoch: m.epoch})
			add(fmt.Sprintf("deliver %s", md.formatMsg(&m)), ns)

		case mMWorm:
			b := int(m.block)
			t := st.txn[b]
			if !t.active || t.epoch != m.epoch {
				// Straggler past its transaction; aborts purge these, so
				// this arm is defensive.
				ns := st.clone()
				ns.removeMsg(i)
				add(fmt.Sprintf("absorb stale %s", md.formatMsg(&m)), ns)
				continue
			}
			g := md.groupsFor(md.homeOf[b], t.remote)[m.gi]
			member := int(g.members[m.pos])
			last := int(m.pos) == len(g.members)-1
			if op := st.op[member]; op.active && !op.write && op.block == m.block {
				// The worm caught the member's read with its fill in flight
				// (worms are never retries, so the serve is proven): defer
				// this member's invalidation and acknowledgment duty past
				// the fill. The worm itself advances — the rest of the
				// group must not wait on this member's fill.
				ns := st.clone()
				ns.op[member].dinval = true
				ns.op[member].depoch = m.epoch
				ns.op[member].dgi = m.gi
				ns.op[member].dlast = last
				if last {
					ns.removeMsg(i)
				} else {
					ns.msgs[i].pos++
				}
				add(fmt.Sprintf("worm b%d txn#%d group %d defers at node %d past its in-flight fill",
					b, m.epoch, m.gi, member), ns)
				continue
			}
			ns := st.clone()
			md.invalidateAt(&ns, member, m.block)
			if !md.cfg.Scheme.GatherAck() {
				ns.addMsg(mmsg{typ: mInvalAck, from: uint8(member), to: md.homeOf[b],
					block: m.block, epoch: m.epoch})
			} else if last {
				// The last member launches the gather; its own ack rides it.
				ns.addMsg(mmsg{typ: mGather, from: uint8(member), to: md.homeOf[b],
					block: m.block, epoch: m.epoch, gi: m.gi})
			} else {
				// The member's i-ack post heads for its reservation entry.
				ns.txn[b].mustPost |= 1 << uint(member)
			}
			if last {
				ns.removeMsg(i)
			} else {
				ns.msgs[i].pos++
			}
			add(fmt.Sprintf("worm b%d txn#%d group %d visits node %d", b, m.epoch, m.gi, member), ns)

		case mInvalAck:
			b := int(m.block)
			ns := st.clone()
			ns.removeMsg(i)
			desc := "absorb stale"
			if t := &ns.txn[b]; t.active && t.epoch == m.epoch {
				desc = "deliver"
				if md.cfg.Mutation == MutCountAcks {
					t.acks++
				} else {
					t.unacked &^= 1 << uint(m.from)
				}
				md.maybeComplete(&ns, b)
			}
			add(fmt.Sprintf("%s %s", desc, md.formatMsg(&m)), ns)

		case mGather:
			b := int(m.block)
			t := st.txn[b]
			if !t.active || t.epoch != m.epoch {
				ns := st.clone()
				ns.removeMsg(i)
				add(fmt.Sprintf("absorb stale %s", md.formatMsg(&m)), ns)
				continue
			}
			g := md.groupsFor(md.homeOf[b], t.remote)[m.gi]
			if t.posted&g.preMask != g.preMask {
				continue // the gather trails unposted i-acks
			}
			ns := st.clone()
			ns.removeMsg(i)
			nt := &ns.txn[b]
			nt.posted &^= g.mask
			if md.cfg.Mutation == MutCountAcks {
				nt.acks += uint8(len(g.members))
			} else {
				nt.unacked &^= g.mask
			}
			md.maybeComplete(&ns, b)
			add(fmt.Sprintf("deliver %s", md.formatMsg(&m)), ns)

		case mFetchReq, mFetchInval:
			owner, b := int(m.to), int(m.block)
			if st.op[owner].active && int(st.op[owner].block) == b {
				continue // the fetch overtook the grant; defer until the fill
			}
			if st.cache[owner][b] != lineM {
				panic("oracle: fetch at a non-modified owner")
			}
			ns := st.clone()
			ns.removeMsg(i)
			if m.typ == mFetchReq {
				ns.cache[owner][b] = lineS
			} else {
				ns.cache[owner][b] = lineI
			}
			ns.addMsg(mmsg{typ: mFetchReply, from: uint8(owner), to: md.homeOf[b], block: m.block})
			add(fmt.Sprintf("deliver %s", md.formatMsg(&m)), ns)

		case mFetchReply:
			b := int(m.block)
			d := st.dir[b]
			if !d.fetch {
				panic("oracle: fetch reply without a fetch in progress")
			}
			ns := st.clone()
			ns.removeMsg(i)
			if d.fetchWrite {
				md.grant(&ns, b, d.fetchReq)
			} else {
				ns.dir[b] = mdir{st: dirS, shr: 1<<uint(d.fetchOwner) | 1<<uint(d.fetchReq)}
				ns.addMsg(mmsg{typ: mReadReply, from: md.homeOf[b], to: d.fetchReq, block: m.block})
			}
			add(fmt.Sprintf("deliver %s", md.formatMsg(&m)), ns)

		case mReadReply:
			ns := st.clone()
			ns.removeMsg(i)
			op := st.op[m.to]
			ns.op[m.to] = mop{}
			var desc string
			if op.squash {
				// The fill's data was serialized at the home before the
				// invalidating write: the load consumes it — ordered just
				// before that write — but installs nothing, so the
				// directory's view (this node holds no copy) stays exact.
				desc = fmt.Sprintf("node %d consumes squashed fill of block %d without install",
					m.to, m.block)
			} else {
				ns.cache[m.to][m.block] = lineS
				desc = fmt.Sprintf("deliver %s", md.formatMsg(&m))
			}
			if op.dinval {
				// The deferred invalidation closes right behind the fill:
				// drop the just-installed line and perform the
				// acknowledgment duty the sharer owed its transaction. A
				// unicast ack is emitted unconditionally (delivery absorbs
				// stragglers); i-ack posts and gather launches only reach a
				// first-generation transaction — an abort purged their
				// reservation entries, and the retry's unicast invals
				// re-cover this member.
				md.invalidateAt(&ns, int(m.to), m.block)
				b := int(m.block)
				if !md.cfg.Scheme.GatherAck() {
					ns.addMsg(mmsg{typ: mInvalAck, from: m.to, to: md.homeOf[b],
						block: m.block, epoch: op.depoch})
				} else if t := &ns.txn[b]; t.active && t.epoch == op.depoch && t.gen == 0 {
					if op.dlast {
						ns.addMsg(mmsg{typ: mGather, from: m.to, to: md.homeOf[b],
							block: m.block, epoch: op.depoch, gi: op.dgi})
					} else {
						t.mustPost |= 1 << uint(m.to)
					}
				}
				desc += ", then runs its deferred invalidation"
			}
			add(desc, ns)

		case mWriteReply:
			ns := st.clone()
			ns.removeMsg(i)
			ns.cache[m.to][m.block] = lineM
			ns.op[m.to] = mop{}
			add(fmt.Sprintf("deliver %s", md.formatMsg(&m)), ns)

		default:
			panic("oracle: unknown message type")
		}
	}

	// Buffered i-ack posts reach their reservation entries.
	for b := 0; b < md.cfg.Blocks; b++ {
		t := st.txn[b]
		if !t.active {
			continue
		}
		for n := 0; n < md.nodes; n++ {
			bit := uint16(1) << uint(n)
			if t.mustPost&bit == 0 {
				continue
			}
			ns := st.clone()
			ns.txn[b].mustPost &^= bit
			ns.txn[b].posted |= bit
			add(fmt.Sprintf("node %d posts i-ack for block %d txn#%d", n, b, t.epoch), ns)
		}
	}

	// The home invalidates its own copy. Deferred (the transition stays
	// disabled) while the home's own served read is awaiting its fill — the
	// local mirror of the directory-targeted deferral: the presence bit
	// proves the self-read was served, the fill is in flight, and the
	// transition re-enables once it lands.
	for b := 0; b < md.cfg.Blocks; b++ {
		t := st.txn[b]
		if !t.active || !t.homePending {
			continue
		}
		if op := st.op[t.home]; op.active && !op.write && int(op.block) == b {
			continue
		}
		ns := st.clone()
		md.invalidateAt(&ns, int(t.home), uint8(b))
		ns.txn[b].homePending = false
		md.maybeComplete(&ns, b)
		add(fmt.Sprintf("home invalidates its local copy of block %d", b), ns)
	}

	// Timeouts: spurious while the budget lasts, and always available as a
	// rescue once a transaction is provably wedged — mirroring the real
	// machine's unbounded retry deadline without unbounded branching
	// (rescues are bounded by the fault budget).
	for b := 0; b < md.cfg.Blocks; b++ {
		t := st.txn[b]
		if !t.active || t.unacked == 0 {
			continue
		}
		if int(st.timeouts) >= md.cfg.MaxTimeouts && !(md.cfg.MaxTimeouts > 0 && md.stuck(st, b)) {
			continue
		}
		ns := st.clone()
		nt := &ns.txn[b]
		nt.gen++
		ns.timeouts++
		// Abort: purge this transaction's request-side worms and gathers.
		// In-flight acknowledgments survive — the reply network cannot
		// recall them — and their survival is exactly the duplicate-ack
		// window the recovery dedup must absorb (MutCountAcks breaks it).
		kept := ns.msgs[:0]
		for _, km := range ns.msgs {
			if km.block == uint8(b) && km.epoch == t.epoch &&
				(km.typ == mInval || km.typ == mMWorm || km.typ == mGather) {
				continue
			}
			kept = append(kept, km)
		}
		ns.msgs = kept
		nt.posted, nt.mustPost = 0, 0
		for n := 0; n < md.nodes; n++ {
			if nt.unacked&(1<<uint(n)) != 0 {
				ns.addMsg(mmsg{typ: mInval, from: t.home, to: uint8(n), block: uint8(b),
					epoch: t.epoch, gen: nt.gen, retry: true})
			}
		}
		add(fmt.Sprintf("timeout on block %d txn#%d: abort, retry gen %d", b, t.epoch, nt.gen), ns)
	}

	// Fault events: kill an expendable worm, or lose a buffered i-ack post.
	if int(st.drops) < md.cfg.MaxDrops {
		for i := range st.msgs {
			m := st.msgs[i]
			if m.typ != mInval && m.typ != mMWorm && m.typ != mInvalAck && m.typ != mGather {
				continue
			}
			ns := st.clone()
			ns.removeMsg(i)
			ns.drops++
			add(fmt.Sprintf("drop %s", md.formatMsg(&m)), ns)
		}
		for b := 0; b < md.cfg.Blocks; b++ {
			t := st.txn[b]
			if !t.active {
				continue
			}
			for n := 0; n < md.nodes; n++ {
				bit := uint16(1) << uint(n)
				if t.mustPost&bit == 0 {
					continue
				}
				ns := st.clone()
				ns.txn[b].mustPost &^= bit
				ns.drops++
				add(fmt.Sprintf("lose node %d's i-ack post for block %d txn#%d", n, b, t.epoch), ns)
			}
		}
	}

	return out
}

// invalidateAt drops node n's copy of b — unless the seeded stale-sharer
// bug is active, in which case the node acknowledges without invalidating.
// A pending read miss at n on the same block is squashed: its fill must
// not install the very copy this invalidation exists to destroy. Only
// retried invalidations reach this with an op still pending —
// directory-targeted ones defer past the fill instead (see the mInval and
// mMWorm arms of successors).
func (md *model) invalidateAt(ns *mstate, n int, b uint8) {
	if op := ns.op[n]; op.active && !op.write && op.block == b {
		ns.op[n].squash = true
	}
	if md.cfg.Mutation == MutSkipInvalidate {
		return
	}
	ns.cache[n][b] = lineI
}

// deliverRequest runs the home's handler for a read or write request on an
// idle block.
func (md *model) deliverRequest(ns *mstate, m mmsg) {
	b := int(m.block)
	d := &ns.dir[b]
	req := m.from
	if m.typ == mReadReq {
		switch d.st {
		case dirU, dirS:
			d.st = dirS
			d.shr |= 1 << uint(req)
			ns.addMsg(mmsg{typ: mReadReply, from: md.homeOf[b], to: req, block: m.block})
		case dirE:
			if d.owner == req {
				panic("oracle: owner re-reading its own modified block")
			}
			owner := d.owner
			*d = mdir{st: dirW, fetch: true, fetchReq: req, fetchOwner: owner}
			ns.addMsg(mmsg{typ: mFetchReq, from: md.homeOf[b], to: owner, block: m.block})
		case dirW:
			panic("oracle: request delivered to a waiting entry")
		default:
			panic("oracle: unknown directory state")
		}
		return
	}
	switch d.st {
	case dirU:
		md.grant(ns, b, req)
	case dirS:
		md.startInval(ns, b, req)
	case dirE:
		if d.owner == req {
			panic("oracle: owner re-writing its own modified block")
		}
		owner := d.owner
		*d = mdir{st: dirW, fetch: true, fetchWrite: true, fetchReq: req, fetchOwner: owner}
		ns.addMsg(mmsg{typ: mFetchInval, from: md.homeOf[b], to: owner, block: m.block})
	case dirW:
		panic("oracle: request delivered to a waiting entry")
	default:
		panic("oracle: unknown directory state")
	}
}

// grant hands block b exclusively to req and sends the write reply.
func (md *model) grant(ns *mstate, b int, req uint8) {
	ns.dir[b] = mdir{st: dirE, owner: req}
	ns.addMsg(mmsg{typ: mWriteReply, from: md.homeOf[b], to: req, block: uint8(b)})
}

// startInval begins the invalidation transaction a write to a Shared block
// requires, launching the scheme's worms (or unicast invalidations for
// UI-UA) over the remote sharer set.
func (md *model) startInval(ns *mstate, b int, req uint8) {
	home := md.homeOf[b]
	d := &ns.dir[b]
	remote := d.shr &^ (1 << uint(req)) &^ (1 << uint(home))
	homeCopy := d.shr&(1<<uint(home)) != 0 && home != req
	if remote == 0 && !homeCopy {
		md.grant(ns, b, req)
		return
	}
	*d = mdir{st: dirW}
	ns.epoch[b]++
	ns.txn[b] = mtxn{
		active: true, epoch: ns.epoch[b], home: home, requester: req,
		remote: remote, unacked: remote, homePending: homeCopy,
	}
	if remote == 0 {
		return
	}
	groups := md.groupsFor(home, remote)
	if md.cfg.Scheme == grouping.UIUA {
		for _, g := range groups {
			ns.addMsg(mmsg{typ: mInval, from: home, to: g.members[0], block: uint8(b),
				epoch: ns.epoch[b]})
		}
		return
	}
	for gi := range groups {
		ns.addMsg(mmsg{typ: mMWorm, from: home, block: uint8(b),
			epoch: ns.epoch[b], gi: uint8(gi)})
	}
}

// maybeComplete grants the transaction's requester exclusivity once every
// acknowledgment condition holds.
func (md *model) maybeComplete(ns *mstate, b int) {
	t := &ns.txn[b]
	if !t.active {
		return
	}
	done := t.unacked == 0 && !t.homePending
	if md.cfg.Mutation == MutCountAcks {
		done = int(t.acks) >= bits.OnesCount16(t.remote) && !t.homePending
	}
	if !done {
		return
	}
	req := t.requester
	ns.txn[b] = mtxn{}
	md.grant(ns, b, req)
}

// stuck reports whether block b's transaction can no longer make progress
// without a timeout: some sharer unacked, nothing left to post, and no
// in-flight message that could drain the unacked set. Timeouts past the
// spurious budget are enabled only here, mirroring the real machine's
// unlimited retry deadline without unbounded branching.
func (md *model) stuck(st *mstate, b int) bool {
	t := st.txn[b]
	if t.unacked == 0 || t.mustPost != 0 {
		return false
	}
	for n := 0; n < md.nodes; n++ {
		// A deferred invalidation whose fill is in flight will perform
		// its acknowledgment duty when the fill lands. The fill's
		// existence is verified, not assumed: deferral is only sound when
		// listed-in-snapshot implies served-with-reply-in-flight (the
		// machine's deferSafe premise), and taking the implication on
		// faith here would mask exactly the deadlock the deferral risks —
		// a deferred ack waiting on a fill that can never arrive.
		op := st.op[n]
		if op.active && op.dinval && int(op.block) == b && op.depoch == t.epoch {
			for _, m := range st.msgs {
				if m.typ == mReadReply && int(m.to) == n && int(m.block) == b {
					return false
				}
			}
		}
	}
	for _, m := range st.msgs {
		if int(m.block) != b || m.epoch != t.epoch {
			continue
		}
		if m.typ == mInval || m.typ == mMWorm || m.typ == mInvalAck {
			return false
		}
		if m.typ == mGather {
			g := md.groupsFor(md.homeOf[b], t.remote)[m.gi]
			if t.posted&g.preMask == g.preMask {
				return false
			}
		}
	}
	return true
}
