package oracle

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/faults"
	"repro/internal/grouping"
	"repro/internal/sim"
)

// fuzzMaxOps bounds the decoded workload so a single fuzz execution stays
// cheap; coverage comes from many inputs, not long ones.
const fuzzMaxOps = 40

// DecodeRunConfig maps an arbitrary byte string onto a valid RunConfig,
// the bridge between go test -fuzz and the harness. The mapping is total
// on inputs of at least eight bytes (shorter inputs error), so the fuzzer
// mutates machine shape, scheme, consistency model, fault plan, and op
// schedule all at once. allowFaults gates the fault plan: fault-free
// fuzzing also explores release consistency, while fault fuzzing stays
// sequentially consistent (the fences the decoder would need are bytes
// better spent on contention).
func DecodeRunConfig(data []byte, allowFaults bool) (RunConfig, error) {
	if len(data) < 8 {
		return RunConfig{}, fmt.Errorf("oracle: fuzz input needs >= 8 bytes, got %d", len(data))
	}
	k := 2 + int(data[0])%3
	cfg := RunConfig{
		Width:      k,
		Height:     k,
		Scheme:     grouping.AllSchemes[int(data[1])%len(grouping.AllSchemes)],
		CacheLines: []int{0, 0, 4, 6}[int(data[3])%4],
		ChaosSeed:  uint64(data[4]) | uint64(data[5])<<8,
		CheckEvery: 8,
	}
	rc := false
	if !allowFaults && data[2]&1 == 1 {
		rc = true
		cfg.Consistency = coherence.ReleaseConsistency
	}
	if allowFaults {
		cfg.Recovery = true
		cfg.MaxRetries = 32
		cfg.Watchdog = true
		cfg.Fault = &faults.Config{
			Seed:             sim.DeriveSeed(0xF0221, uint64(data[6])|uint64(data[7])<<8),
			DropRate:         float64(data[6]%8) / 20,
			AckLossRate:      float64(data[6]>>3%8) / 40,
			LinkStallRate:    float64(data[7]%8) / 80,
			LinkStallCycles:  64,
			RouterSlowRate:   float64(data[7]>>3%8) / 80,
			RouterSlowCycles: 16,
		}
	}
	nodes := k * k
	for rest := data[8:]; len(rest) >= 2 && len(cfg.Ops) < fuzzMaxOps; rest = rest[2:] {
		a, b := rest[0], rest[1]
		op := Op{Node: int(b) % nodes, Block: int(a>>2) % 6}
		switch a % 4 {
		case 0, 1:
			op.Kind = OpRead
		case 2:
			op.Kind = OpWrite
		default:
			if rc {
				op.Kind = OpFence
				op.Block = 0
			} else {
				op.Kind = OpWrite
			}
		}
		cfg.Ops = append(cfg.Ops, op)
	}
	return cfg, nil
}
