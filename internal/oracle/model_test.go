package oracle

import (
	"strings"
	"testing"

	"repro/internal/grouping"
)

// TestExploreCleanSchemes exhaustively explores the fault-free model at a
// 2x2 mesh with two blocks for the paper's three principal schemes (plus
// the row/column and BRCP variants cheaply reachable at this size) and
// requires zero violations.
func TestExploreCleanSchemes(t *testing.T) {
	for _, s := range []grouping.Scheme{
		grouping.UIUA, grouping.MIUAEC, grouping.MIMAEC,
		grouping.MIMAECRC, grouping.MIUAPA, grouping.BR,
	} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Explore(ModelConfig{Width: 2, Height: 2, Blocks: 2, Scheme: s})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("violation:\n%s", res.Report())
			}
			if res.States < 1000 {
				t.Fatalf("suspiciously small state space (%d states): exploration is not exhaustive",
					res.States)
			}
			if res.Terminals == 0 {
				t.Fatal("no terminal states found")
			}
		})
	}
}

// TestExploreWithFaults turns on the fault budget (worm kills, ack-loss,
// spurious timeouts) and requires the recovery layer to keep every
// interleaving safe and terminating. One block keeps the space tractable.
func TestExploreWithFaults(t *testing.T) {
	for _, s := range []grouping.Scheme{grouping.UIUA, grouping.MIUAEC, grouping.MIMAEC} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Explore(ModelConfig{
				Width: 2, Height: 2, Blocks: 1, Scheme: s,
				MaxTimeouts: 1, MaxDrops: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("violation:\n%s", res.Report())
			}
		})
	}
}

// TestExploreMultiOp lets each node issue two operations, covering
// invalidate-then-refill and squashed-fill chains.
func TestExploreMultiOp(t *testing.T) {
	res, err := Explore(ModelConfig{
		Width: 2, Height: 1, Blocks: 2, Scheme: grouping.UIUA, OpsPerNode: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("violation:\n%s", res.Report())
	}
}

// TestMutationCountAcks seeds the ack-dedup bug: completion judged by
// counting acknowledgments instead of draining the unacked set. A sharer
// acknowledged in two generations double-counts, so the checker must find
// a premature grant with a stale Shared copy — and print a counterexample.
func TestMutationCountAcks(t *testing.T) {
	res, err := Explore(ModelConfig{
		Width: 2, Height: 2, Blocks: 1, Scheme: grouping.UIUA,
		MaxTimeouts: 1, Mutation: MutCountAcks,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatalf("seeded ack-dedup bug not detected:\n%s", res.Report())
	}
	if res.Violation.Kind != "safety" {
		t.Fatalf("expected a safety violation, got %q: %s", res.Violation.Kind, res.Violation.Detail)
	}
	if len(res.Violation.Trace) == 0 {
		t.Fatal("counterexample trace is empty")
	}
	if !strings.Contains(res.Report(), "counterexample") {
		t.Fatalf("report lacks a counterexample:\n%s", res.Report())
	}
}

// TestMutationSkipInvalidate seeds the stale-sharer bug: sharers
// acknowledge without invalidating. The checker must catch it without any
// fault budget at all — the very first write to a shared block exhibits it.
func TestMutationSkipInvalidate(t *testing.T) {
	for _, s := range []grouping.Scheme{grouping.UIUA, grouping.MIMAEC} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Explore(ModelConfig{
				Width: 2, Height: 2, Blocks: 1, Scheme: s, Mutation: MutSkipInvalidate,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.OK() {
				t.Fatal("seeded stale-sharer bug not detected")
			}
			if res.Violation.Kind != "safety" {
				t.Fatalf("expected a safety violation, got %q: %s",
					res.Violation.Kind, res.Violation.Detail)
			}
		})
	}
}

// TestExploreDeterministic requires byte-identical reports across runs.
func TestExploreDeterministic(t *testing.T) {
	cfg := ModelConfig{Width: 2, Height: 2, Blocks: 1, Scheme: grouping.MIMAEC,
		MaxTimeouts: 1, MaxDrops: 1}
	a, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() != b.Report() {
		t.Fatalf("reports differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.Report(), b.Report())
	}
}

// TestModelConfigValidate pins the config guard rails.
func TestModelConfigValidate(t *testing.T) {
	cases := []ModelConfig{
		{Width: 4, Height: 4, Blocks: 1, Scheme: grouping.UIUA},              // too many nodes
		{Width: 2, Height: 2, Blocks: 3, Scheme: grouping.UIUA},              // too many blocks
		{Width: 2, Height: 2, Blocks: 1, Scheme: grouping.UMC},               // unsupported scheme
		{Width: 2, Height: 2, Blocks: 1, Scheme: grouping.UIUA, MaxDrops: 1}, // drops without timeouts
	}
	for _, cfg := range cases {
		if _, err := Explore(cfg.withDefaults()); err == nil {
			t.Errorf("config %+v unexpectedly accepted", cfg)
		}
	}
}

// TestStateCodecRoundTrip pins encode/decode as exact inverses on a state
// with every field class populated.
func TestStateCodecRoundTrip(t *testing.T) {
	md := newModel(ModelConfig{Width: 2, Height: 2, Blocks: 2,
		Scheme: grouping.MIMAEC}.withDefaults())
	st := mstate{timeouts: 2, drops: 1}
	st.cache[1][0] = lineS
	st.cache[3][1] = lineM
	st.op[2] = mop{active: true, write: true, block: 1}
	st.op[1] = mop{active: true, squash: true}
	st.op[0] = mop{active: true, dinval: true, dlast: true, block: 1, dgi: 1, depoch: 7}
	st.used[2] = 1
	st.dir[0] = mdir{st: dirW}
	st.dir[1] = mdir{st: dirE, owner: 3}
	st.epoch[0] = 7
	st.txn[0] = mtxn{active: true, epoch: 7, home: 0, requester: 3,
		remote: 0b0110, unacked: 0b0100, mustPost: 0b0010, homePending: true, gen: 1}
	st.addMsg(mmsg{typ: mInval, from: 0, to: 2, block: 0, epoch: 7, gen: 1, retry: true})
	st.addMsg(mmsg{typ: mMWorm, from: 0, block: 0, epoch: 7, gi: 1, pos: 1})
	key := md.encode(&st)
	back := md.decode(key)
	if md.encode(&back) != key {
		t.Fatal("encode/decode round trip changed the state")
	}
}
