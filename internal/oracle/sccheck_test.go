package oracle

import (
	"strings"
	"testing"
)

// TestCheckLegalHistory passes a straightforwardly legal SC history.
func TestCheckLegalHistory(t *testing.T) {
	h := &History{
		Streams: [][]Obs{
			{{Kind: OpWrite, Block: 0, Tok: 1}, {Kind: OpRead, Block: 0, Saw: 1}},
			{{Kind: OpRead, Block: 0, Saw: 0}, {Kind: OpRead, Block: 0, Saw: 1},
				{Kind: OpWrite, Block: 0, Tok: 2}},
			{{Kind: OpRead, Block: 0, Saw: 2}},
		},
		Commit: map[int][]uint64{0: {1, 2}},
		PO:     POFull,
	}
	if err := h.Check(); err != nil {
		t.Fatalf("legal history rejected: %v", err)
	}
}

// TestCheckRejectsIllegalHistory pins the checker's core obligation: a node
// that reads a write's value and then reads the block's initial value has
// traveled backwards in time, and no total order can explain it.
func TestCheckRejectsIllegalHistory(t *testing.T) {
	h := &History{
		Streams: [][]Obs{
			{{Kind: OpWrite, Block: 0, Tok: 1}},
			{{Kind: OpRead, Block: 0, Saw: 1}, {Kind: OpRead, Block: 0, Saw: 0}},
		},
		Commit: map[int][]uint64{0: {1}},
		PO:     POFull,
	}
	err := h.Check()
	if err == nil {
		t.Fatal("time-travel history accepted")
	}
	if !strings.Contains(err.Error(), "no legal total order") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The reported cycle must name the offending operations.
	if !strings.Contains(err.Error(), "read b0 saw 0") {
		t.Fatalf("cycle omits the stale read: %v", err)
	}
}

// TestCheckStoreBufferLitmus runs the classic store-buffer litmus test:
// each node writes one block then reads the other, and both reads see the
// initial value. Illegal under sequential consistency, legal under the
// fence-only program order of release consistency (no fences separate the
// write from the read).
func TestCheckStoreBufferLitmus(t *testing.T) {
	mk := func(po POMode) *History {
		return &History{
			Streams: [][]Obs{
				{{Kind: OpWrite, Block: 0, Tok: 1}, {Kind: OpRead, Block: 1, Saw: 0}},
				{{Kind: OpWrite, Block: 1, Tok: 2}, {Kind: OpRead, Block: 0, Saw: 0}},
			},
			Commit: map[int][]uint64{0: {1}, 1: {2}},
			PO:     po,
		}
	}
	if err := mk(POFull).Check(); err == nil {
		t.Fatal("store-buffer outcome accepted under sequential consistency")
	}
	if err := mk(POFence).Check(); err != nil {
		t.Fatalf("store-buffer outcome rejected under release consistency: %v", err)
	}
}

// TestCheckFenceRestoresOrder verifies a fence between the write and the
// read makes the store-buffer outcome illegal again under POFence.
func TestCheckFenceRestoresOrder(t *testing.T) {
	h := &History{
		Streams: [][]Obs{
			{{Kind: OpWrite, Block: 0, Tok: 1}, {Kind: OpFence},
				{Kind: OpRead, Block: 1, Saw: 0}},
			{{Kind: OpWrite, Block: 1, Tok: 2}, {Kind: OpFence},
				{Kind: OpRead, Block: 0, Saw: 0}},
		},
		Commit: map[int][]uint64{0: {1}, 1: {2}},
		PO:     POFence,
	}
	if err := h.Check(); err == nil {
		t.Fatal("fenced store-buffer outcome accepted")
	}
}

// TestCheckCoherenceViolation verifies per-block commit order is enforced
// even across nodes with no direct interaction: two reads on one node
// observing two writes in anti-commit order form a cycle.
func TestCheckCoherenceViolation(t *testing.T) {
	h := &History{
		Streams: [][]Obs{
			{{Kind: OpWrite, Block: 0, Tok: 1}},
			{{Kind: OpWrite, Block: 0, Tok: 2}},
			{{Kind: OpRead, Block: 0, Saw: 2}, {Kind: OpRead, Block: 0, Saw: 1}},
		},
		Commit: map[int][]uint64{0: {1, 2}},
		PO:     POFull,
	}
	if err := h.Check(); err == nil {
		t.Fatal("anti-commit-order reads accepted")
	}
}

// TestCheckMalformedHistories pins the validation errors for histories
// that are structurally broken rather than merely illegal.
func TestCheckMalformedHistories(t *testing.T) {
	cases := []struct {
		name string
		h    *History
		want string
	}{
		{
			name: "untracked token",
			h: &History{
				Streams: [][]Obs{{{Kind: OpRead, Block: 0, Saw: 9}}},
				Commit:  map[int][]uint64{},
			},
			want: "untracked token",
		},
		{
			name: "write missing from commit order",
			h: &History{
				Streams: [][]Obs{{{Kind: OpWrite, Block: 0, Tok: 1}}},
				Commit:  map[int][]uint64{},
			},
			want: "missing from commit order",
		},
		{
			name: "zero write token",
			h: &History{
				Streams: [][]Obs{{{Kind: OpWrite, Block: 0}}},
				Commit:  map[int][]uint64{},
			},
			want: "zero token",
		},
		{
			name: "commit lists unknown token",
			h: &History{
				Streams: [][]Obs{{{Kind: OpWrite, Block: 0, Tok: 1}}},
				Commit:  map[int][]uint64{0: {1, 7}},
			},
			want: "no stream wrote",
		},
		{
			name: "cross-block observation",
			h: &History{
				Streams: [][]Obs{
					{{Kind: OpWrite, Block: 1, Tok: 1}},
					{{Kind: OpRead, Block: 0, Saw: 1}},
				},
				Commit: map[int][]uint64{1: {1}},
			},
			want: "written to block",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.h.Check()
			if err == nil {
				t.Fatal("malformed history accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q lacks %q", err, tc.want)
			}
		})
	}
}

// TestCheckDeterministicError requires byte-identical violation messages
// across runs (the checker's DFS order is fixed).
func TestCheckDeterministicError(t *testing.T) {
	mk := func() *History {
		return &History{
			Streams: [][]Obs{
				{{Kind: OpWrite, Block: 0, Tok: 1}},
				{{Kind: OpRead, Block: 0, Saw: 1}, {Kind: OpRead, Block: 0, Saw: 0}},
			},
			Commit: map[int][]uint64{0: {1}},
			PO:     POFull,
		}
	}
	a, b := mk().Check(), mk().Check()
	if a == nil || b == nil {
		t.Fatal("illegal history accepted")
	}
	if a.Error() != b.Error() {
		t.Fatalf("violation messages differ:\n%s\n---\n%s", a, b)
	}
}
