package oracle

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/faults"
	"repro/internal/grouping"
	"repro/internal/sim"
)

// genOps builds a deterministic contention-heavy workload: every node
// issues count operations over a small block set (block 0 is hot), writes
// on roughly a third of them, with fences sprinkled in under release
// consistency.
func genOps(seed uint64, nodes, blocks, count int, fences bool) []Op {
	rng := sim.NewRNG(seed)
	var ops []Op
	for i := 0; i < count; i++ {
		n := rng.Intn(nodes)
		b := rng.Intn(blocks)
		if rng.Intn(3) == 0 {
			b = 0
		}
		switch {
		case fences && rng.Intn(8) == 0:
			ops = append(ops, Op{Node: n, Kind: OpFence})
		case rng.Intn(3) == 0:
			ops = append(ops, Op{Node: n, Block: b, Kind: OpWrite})
		default:
			ops = append(ops, Op{Node: n, Block: b, Kind: OpRead})
		}
	}
	return ops
}

func requireOK(t *testing.T, res *RunResult, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("oracle failures:\n%s", res.Report())
	}
}

// TestRunChaosSchedules drives the full machine under chaos tie-breaking
// for the paper's principal schemes and checks the recorded history
// against the sequential-consistency oracle.
func TestRunChaosSchedules(t *testing.T) {
	for _, s := range []grouping.Scheme{grouping.UIUA, grouping.MIUAEC, grouping.MIMAEC, grouping.BR} {
		for seed := uint64(1); seed <= 3; seed++ {
			s, seed := s, seed
			t.Run(s.String(), func(t *testing.T) {
				t.Parallel()
				res, err := Run(RunConfig{
					Width: 3, Height: 3, Scheme: s,
					CacheLines: 4, ChaosSeed: seed,
					Ops:        genOps(seed*31, 9, 6, 120, false),
					CheckEvery: 10,
				})
				requireOK(t, res, err)
				if len(res.History.Commit) == 0 {
					t.Fatal("workload committed no writes; the oracle checked nothing")
				}
			})
		}
	}
}

// TestRunFaultSchedules layers deterministic fault injection (worm drops,
// lost acks, link stalls, router slowdowns) under the SC oracle: recovery
// must mask every fault without ever completing an operation with a stale
// value or firing the liveness watchdog.
func TestRunFaultSchedules(t *testing.T) {
	for _, s := range []grouping.Scheme{grouping.UIUA, grouping.MIMAEC} {
		for seed := uint64(1); seed <= 4; seed++ {
			s, seed := s, seed
			t.Run(s.String(), func(t *testing.T) {
				t.Parallel()
				res, err := Run(RunConfig{
					Width: 3, Height: 3, Scheme: s,
					CacheLines: 4, ChaosSeed: seed,
					Recovery:   true,
					MaxRetries: 32,
					Fault: &faults.Config{
						Seed:             sim.DeriveSeed(0xFA147, seed),
						DropRate:         0.2,
						AckLossRate:      0.1,
						LinkStallRate:    0.05,
						LinkStallCycles:  64,
						RouterSlowRate:   0.05,
						RouterSlowCycles: 16,
					},
					Ops:        genOps(seed*77, 9, 6, 100, false),
					CheckEvery: 10,
					Watchdog:   true,
				})
				requireOK(t, res, err)
			})
		}
	}
}

// TestRunNodeCrashSchedules layers fail-silent processor crashes under the
// SC oracle: two nodes crash at seed-hashed cycles mid-run, their remaining
// program orders are abandoned, and every surviving operation must complete
// with a legal value — the recovery path absorbs the crashed sharers'
// silence via implicit invalidation without ever letting a stale value
// commit or the watchdog fire.
func TestRunNodeCrashSchedules(t *testing.T) {
	skipped := 0
	for _, s := range []grouping.Scheme{grouping.UIUA, grouping.MIMAEC} {
		for seed := uint64(1); seed <= 4; seed++ {
			res, err := Run(RunConfig{
				Width: 3, Height: 3, Scheme: s,
				CacheLines: 4, ChaosSeed: seed,
				Recovery:   true,
				MaxRetries: 32,
				Fault: &faults.Config{
					Seed:         sim.DeriveSeed(0xC4A54E7, seed),
					CrashedNodes: 2,
					DeathWindow:  4096,
				},
				Ops:        genOps(seed*41, 9, 6, 120, false),
				CheckEvery: 10,
				Watchdog:   true,
			})
			requireOK(t, res, err)
			skipped += res.Skipped
		}
	}
	if skipped == 0 {
		t.Fatal("no operation was ever skipped by a crash; the schedules never exercised fail-silence")
	}
}

// TestRunLinkDeathSchedules layers permanent link death under the SC
// oracle: two links die at seed-hashed cycles and every transaction must
// still complete with a legal value over degraded routes (detours, relays,
// severed-group fallbacks, purged worms re-covered by retries).
func TestRunLinkDeathSchedules(t *testing.T) {
	for _, s := range []grouping.Scheme{grouping.UIUA, grouping.MIUAEC, grouping.MIMAEC} {
		for seed := uint64(1); seed <= 3; seed++ {
			s, seed := s, seed
			t.Run(s.String(), func(t *testing.T) {
				t.Parallel()
				res, err := Run(RunConfig{
					Width: 3, Height: 3, Scheme: s,
					CacheLines: 4, ChaosSeed: seed,
					Recovery:   true,
					MaxRetries: 32,
					Fault: &faults.Config{
						Seed:        sim.DeriveSeed(0xDEADE7, seed),
						DeadLinks:   2,
						DeathWindow: 4096,
					},
					Ops:        genOps(seed*53, 9, 6, 120, false),
					CheckEvery: 10,
					Watchdog:   true,
				})
				requireOK(t, res, err)
			})
		}
	}
}

// TestRunReleaseConsistency exercises the store-buffer path: asynchronous
// writes, coalescing, store-to-load forwarding, and fences, checked under
// the weaker fence-only program order.
func TestRunReleaseConsistency(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run("seed", func(t *testing.T) {
			t.Parallel()
			res, err := Run(RunConfig{
				Width: 3, Height: 3, Scheme: grouping.MIMAECRC,
				Consistency: coherence.ReleaseConsistency,
				CacheLines:  4, ChaosSeed: seed,
				Ops:        genOps(seed*13, 9, 6, 120, true),
				CheckEvery: 10,
			})
			requireOK(t, res, err)
			if res.History.PO != POFence {
				t.Fatalf("release-consistency run checked under %v program order", res.History.PO)
			}
		})
	}
}

// TestRunUnboundedCache covers the no-eviction regime (CacheLines = 0).
func TestRunUnboundedCache(t *testing.T) {
	res, err := Run(RunConfig{
		Width: 2, Height: 2, Scheme: grouping.MIUAEC,
		ChaosSeed: 5,
		Ops:       genOps(99, 4, 4, 80, false),
	})
	requireOK(t, res, err)
}

// TestRunDeterministic requires byte-identical reports for identical
// configurations — the property the fuzzer's replay mode depends on.
func TestRunDeterministic(t *testing.T) {
	cfg := RunConfig{
		Width: 3, Height: 3, Scheme: grouping.MIMAEC,
		CacheLines: 4, ChaosSeed: 7,
		Recovery:   true,
		MaxRetries: 32,
		Fault: &faults.Config{
			Seed:            0xBEEF,
			DropRate:        0.15,
			AckLossRate:     0.1,
			LinkStallRate:   0.05,
			LinkStallCycles: 32,
		},
		Ops:        genOps(1234, 9, 6, 90, false),
		CheckEvery: 10,
		Watchdog:   true,
	}
	a, errA := Run(cfg)
	requireOK(t, a, errA)
	b, errB := Run(cfg)
	requireOK(t, b, errB)
	if a.Report() != b.Report() {
		t.Fatalf("reports differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.Report(), b.Report())
	}
}

// TestRunConfigValidation pins the harness's config guard rails.
func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(RunConfig{Width: 1, Height: 1, Scheme: grouping.UIUA}); err == nil {
		t.Error("1x1 mesh accepted")
	}
	if _, err := Run(RunConfig{Width: 2, Height: 2, Scheme: grouping.UIUA,
		Fault: &faults.Config{Seed: 1}}); err == nil {
		t.Error("faults without recovery accepted")
	}
	if _, err := Run(RunConfig{Width: 2, Height: 2, Scheme: grouping.UIUA,
		Ops: []Op{{Node: 9, Block: 0, Kind: OpRead}}}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := Run(RunConfig{Width: 2, Height: 2, Scheme: grouping.UIUA,
		Ops: []Op{{Node: 0, Kind: OpFence}}}); err == nil {
		t.Error("fence under sequential consistency accepted")
	}
}
