package oracle

import (
	"fmt"
	"strings"
)

// ModelViolation is one counterexample found by Explore.
type ModelViolation struct {
	// Kind is "safety" (a per-state invariant broke), "termination" (a
	// deadlocked state retired work incompletely) or "livelock" (a state
	// from which no execution can terminate).
	Kind string
	// Detail states the broken property.
	Detail string
	// Trace is a minimal action sequence from the initial state to the
	// violating state (BFS parents give the shortest such path), followed
	// by a dump of that state.
	Trace []string
}

// ModelResult summarizes one exhaustive exploration.
type ModelResult struct {
	Config    ModelConfig
	States    int
	Edges     int
	Terminals int
	Violation *ModelViolation
}

// OK reports whether the exploration finished with no violation.
func (r *ModelResult) OK() bool { return r.Violation == nil }

// Report renders the result deterministically: byte-identical across runs.
func (r *ModelResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model %s\n", r.Config)
	fmt.Fprintf(&b, "  states=%d edges=%d terminals=%d\n", r.States, r.Edges, r.Terminals)
	if r.Violation == nil {
		b.WriteString("  result: PASS\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  result: FAIL [%s] %s\n", r.Violation.Kind, r.Violation.Detail)
	b.WriteString("  counterexample:\n")
	for _, step := range r.Violation.Trace {
		fmt.Fprintf(&b, "    %s\n", step)
	}
	return b.String()
}

// Explore enumerates every state the abstract protocol model can reach
// under cfg, checking safety at each state, completeness at each terminal
// state, and — after the full graph is known — that every state retains a
// path to termination. It returns a non-nil error only for invalid configs
// or a state-space overflow; protocol violations come back inside the
// result with a minimal counterexample trace.
func Explore(cfg ModelConfig) (*ModelResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	md := newModel(cfg)
	res := &ModelResult{Config: cfg}

	init := md.initial()
	keys := []string{md.encode(&init)}
	idx := map[string]int32{keys[0]: 0}
	parent := []int32{-1}
	parentAct := []string{""}
	preds := [][]int32{nil}
	var terminals []int32
	edges := 0
	fill := func() {
		res.States = len(keys)
		res.Edges = edges
		res.Terminals = len(terminals)
	}

	for i := 0; i < len(keys); i++ {
		st := md.decode(keys[i])
		succs := md.successors(&st)
		if len(succs) == 0 {
			terminals = append(terminals, int32(i))
			if v := md.checkTerminal(&st); v != "" {
				res.Violation = &ModelViolation{Kind: "termination", Detail: v,
					Trace: md.traceTo(keys, parent, parentAct, int32(i))}
				fill()
				return res, nil
			}
			continue
		}
		for _, s := range succs {
			edges++
			key := md.encode(&s.next)
			j, known := idx[key]
			if !known {
				j = int32(len(keys))
				if int(j) >= cfg.MaxStates {
					fill()
					return nil, fmt.Errorf("oracle: state space exceeds MaxStates=%d under %s",
						cfg.MaxStates, cfg)
				}
				keys = append(keys, key)
				idx[key] = j
				parent = append(parent, int32(i))
				parentAct = append(parentAct, s.action)
				preds = append(preds, nil)
				if v := md.checkState(&s.next); v != "" {
					res.Violation = &ModelViolation{Kind: "safety", Detail: v,
						Trace: md.traceTo(keys, parent, parentAct, j)}
					fill()
					return res, nil
				}
			}
			preds[j] = append(preds[j], int32(i))
		}
	}

	// Liveness: every state must retain a path to some terminal state —
	// otherwise an execution exists that runs forever without completing
	// (a livelock the timed simulator's watchdog could only suspect).
	canTerm := make([]bool, len(keys))
	queue := make([]int32, 0, len(terminals))
	for _, t := range terminals {
		canTerm[t] = true
		queue = append(queue, t)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, p := range preds[v] {
			if !canTerm[p] {
				canTerm[p] = true
				queue = append(queue, p)
			}
		}
	}
	for i := range keys {
		if !canTerm[i] {
			res.Violation = &ModelViolation{Kind: "livelock",
				Detail: "no execution from this state can terminate",
				Trace:  md.traceTo(keys, parent, parentAct, int32(i))}
			break
		}
	}
	fill()
	return res, nil
}

// traceTo reconstructs the action path from the initial state to state i
// and appends a dump of that state.
func (md *model) traceTo(keys []string, parent []int32, acts []string, i int32) []string {
	var rev []string
	for v := i; v > 0; v = parent[v] {
		rev = append(rev, acts[v])
	}
	out := make([]string, 0, len(rev)+8)
	for k := len(rev) - 1; k >= 0; k-- {
		out = append(out, fmt.Sprintf("%2d. %s", len(rev)-k, rev[k]))
	}
	st := md.decode(keys[i])
	out = append(out, "reached state:")
	dump := strings.TrimRight(md.formatState(&st), "\n")
	out = append(out, strings.Split(dump, "\n")...)
	return out
}
