package oracle

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/grouping"
	"repro/internal/topology"
)

// This file defines the abstract protocol model the exhaustive checker
// explores: a compressed rendition of the directory/cache/invalidation
// state machine of internal/coherence with timing collapsed away. Protocol
// handlers run atomically at message delivery; controller-queue and
// in-flight latencies survive as nondeterministic delivery order, which is
// a superset of every schedule the timed simulator can produce. Writebacks
// are absent (unbounded caches, the paper's configuration), and the home's
// per-block transaction queue is modeled as deliver-when-free, an
// any-order superset of the real FIFO.

// Model bounds: the abstract state uses fixed-size arrays and 16-bit node
// masks.
const (
	modelMaxNodes  = 8
	modelMaxBlocks = 2
)

// Mutation selects a deliberately seeded protocol bug, used to prove the
// checker finds real violations (and pinned by tests).
type Mutation int

const (
	// MutNone checks the faithful model.
	MutNone Mutation = iota
	// MutCountAcks judges transaction completion by counting acknowledgment
	// arrivals instead of draining the unacked-sharer set: the ack-dedup
	// bug. A sharer acknowledged in two generations (its original ack
	// surviving an abort alongside its retry ack) double-counts, granting
	// exclusivity while another sharer still holds the line.
	MutCountAcks
	// MutSkipInvalidate acknowledges invalidations without invalidating the
	// local copy: the stale-sharer bug, violating exclusive isolation on
	// the very first write to a shared block.
	MutSkipInvalidate
	numMutations
)

var mutationNames = [numMutations]string{"none", "count-acks", "skip-invalidate"}

func (mu Mutation) String() string {
	if mu >= 0 && mu < numMutations {
		return mutationNames[mu]
	}
	panic("oracle: unknown mutation")
}

// ParseMutation returns the mutation with the given name.
func ParseMutation(name string) (Mutation, error) {
	for i, n := range mutationNames {
		if n == name {
			return Mutation(i), nil
		}
	}
	return 0, fmt.Errorf("oracle: unknown mutation %q", name)
}

// ModelConfig bounds one exhaustive exploration.
type ModelConfig struct {
	// Width, Height select the mesh (at most modelMaxNodes nodes).
	Width, Height int
	// Blocks is the number of shared blocks (1 or 2).
	Blocks int
	// Scheme selects the invalidation framework under test.
	Scheme grouping.Scheme
	// OpsPerNode bounds how many operations each node may issue.
	OpsPerNode int
	// MaxTimeouts bounds how many i-ack deadline firings (spurious or
	// fault-induced) the exploration branches on; 0 disables the recovery
	// layer entirely, which also verifies primary-path liveness.
	MaxTimeouts int
	// MaxDrops bounds fault events: expendable-worm kills and lost i-ack
	// posts. Requires MaxTimeouts > 0 (recovery is the only way back).
	MaxDrops int
	// Mutation seeds a deliberate protocol bug (default MutNone).
	Mutation Mutation
	// MaxStates aborts the exploration beyond this many states
	// (default 4,000,000).
	MaxStates int
}

func (c ModelConfig) withDefaults() ModelConfig {
	if c.Width == 0 && c.Height == 0 {
		c.Width, c.Height = 2, 2
	}
	if c.Blocks == 0 {
		c.Blocks = 2
	}
	if c.OpsPerNode == 0 {
		c.OpsPerNode = 1
	}
	if c.MaxStates == 0 {
		c.MaxStates = 4_000_000
	}
	return c
}

func (c ModelConfig) validate() error {
	nodes := c.Width * c.Height
	if c.Width < 2 || c.Height < 1 || nodes < 2 || nodes > modelMaxNodes {
		return fmt.Errorf("oracle: model mesh %dx%d out of range (2..%d nodes)",
			c.Width, c.Height, modelMaxNodes)
	}
	if c.Blocks < 1 || c.Blocks > modelMaxBlocks {
		return fmt.Errorf("oracle: model blocks %d out of range (1..%d)", c.Blocks, modelMaxBlocks)
	}
	if c.OpsPerNode < 1 || c.OpsPerNode > 3 {
		return fmt.Errorf("oracle: OpsPerNode %d out of range (1..3)", c.OpsPerNode)
	}
	if c.MaxDrops > 0 && c.MaxTimeouts == 0 {
		return fmt.Errorf("oracle: MaxDrops without MaxTimeouts would wedge (no recovery path)")
	}
	if c.Scheme == grouping.UMC {
		return fmt.Errorf("oracle: UMC is outside the model (software tree, no recovery)")
	}
	if c.Mutation < 0 || c.Mutation >= numMutations {
		return fmt.Errorf("oracle: unknown mutation %d", int(c.Mutation))
	}
	return nil
}

// String is the config's deterministic fingerprint, used in reports.
func (c ModelConfig) String() string {
	return fmt.Sprintf("%dx%d %v blocks=%d ops=%d timeouts=%d drops=%d mutation=%v",
		c.Width, c.Height, c.Scheme, c.Blocks, c.OpsPerNode, c.MaxTimeouts, c.MaxDrops, c.Mutation)
}

// Abstract cache-line and directory states.
type lineSt uint8

const (
	lineI lineSt = iota
	lineS
	lineM
)

var lineNames = [...]string{"I", "S", "M"}

func (s lineSt) String() string { return lineNames[s] }

type dirSt uint8

const (
	dirU dirSt = iota
	dirS
	dirE
	dirW
)

var dirNames = [...]string{"U", "S", "E", "W"}

func (s dirSt) String() string { return dirNames[s] }

// mtyp enumerates abstract message types.
type mtyp uint8

const (
	mReadReq mtyp = iota
	mWriteReq
	mInval // unicast invalidation: UI-UA original or any scheme's retry
	mInvalAck
	mMWorm // multidestination invalidation worm, delivered member by member
	mGather
	mFetchReq
	mFetchInval
	mFetchReply
	mReadReply
	mWriteReply
	numMtyp
)

var mtypNames = [numMtyp]string{
	"readReq", "writeReq", "inval", "invalAck", "worm", "gather",
	"fetchReq", "fetchInval", "fetchReply", "readReply", "writeReply",
}

func (t mtyp) String() string {
	if t < numMtyp {
		return mtypNames[t]
	}
	panic("oracle: unknown message type")
}

// mmsg is one in-flight abstract message. For mMWorm, to is unused and pos
// indexes the next group member to visit; for everything else to is the
// delivery node. epoch stamps invalidation-transaction traffic (0 = none).
type mmsg struct {
	typ   mtyp
	from  uint8
	to    uint8
	block uint8
	epoch uint16
	gen   uint8
	gi    uint8
	pos   uint8
	retry bool
}

// mdir is one block's directory entry plus the home-side fetch context.
type mdir struct {
	st         dirSt
	owner      uint8
	shr        uint16
	fetch      bool
	fetchWrite bool
	fetchReq   uint8
	fetchOwner uint8
}

// mtxn is one block's active invalidation transaction (at most one per
// block: the home's queue serializes them). epoch distinguishes this
// transaction's traffic from a predecessor's stragglers, standing in for
// the real implementation's per-transaction identity.
type mtxn struct {
	active      bool
	epoch       uint16
	home        uint8
	requester   uint8
	remote      uint16 // original remote sharer mask
	unacked     uint16
	mustPost    uint16 // invalidated, i-ack post still queued at the member
	posted      uint16 // i-ack posts sitting in buffer entries
	homePending bool
	gen         uint8
	acks        uint8 // MutCountAcks bookkeeping
}

// mop is one node's pending processor operation. dinval marks a
// directory-targeted invalidation that arrived while the read's fill was
// in flight and was deferred past it (the model's mirror of sharerInval's
// afterFill deferral): when the fill lands, the line is installed, then
// invalidated, and the acknowledgment duty the sharer owed — unicast ack,
// i-ack post, or the gather launch for group dgi when dlast — is
// performed, all stamped with the deferring transaction's depoch. squash
// marks a read miss caught by a retried invalidation instead: its fill is
// consumed on arrival without installing the line.
type mop struct {
	active bool
	write  bool
	squash bool
	dinval bool
	dlast  bool
	block  uint8
	dgi    uint8
	depoch uint16
}

// mstate is the full abstract machine state.
type mstate struct {
	cache    [modelMaxNodes][modelMaxBlocks]lineSt
	dir      [modelMaxBlocks]mdir
	op       [modelMaxNodes]mop
	used     [modelMaxNodes]uint8
	txn      [modelMaxBlocks]mtxn
	epoch    [modelMaxBlocks]uint16
	msgs     []mmsg
	timeouts uint8
	drops    uint8
}

func (st *mstate) clone() mstate {
	ns := *st
	ns.msgs = append([]mmsg(nil), st.msgs...)
	return ns
}

func (st *mstate) addMsg(m mmsg) { st.msgs = append(st.msgs, m) }

func (st *mstate) removeMsg(i int) {
	st.msgs = append(st.msgs[:i:i], st.msgs[i+1:]...)
}

// mgroup is one worm group derived from grouping.Groups: member node ids in
// visit order plus the masks the gather machinery needs.
type mgroup struct {
	members []uint8
	mask    uint16
	preMask uint16 // every member but the launcher (the last)
}

// model carries the immutable exploration context.
type model struct {
	cfg    ModelConfig
	nodes  int
	mesh   *topology.Mesh
	homeOf [modelMaxBlocks]uint8
	groups map[uint32][]mgroup
}

func newModel(cfg ModelConfig) *model {
	md := &model{
		cfg:    cfg,
		nodes:  cfg.Width * cfg.Height,
		mesh:   topology.NewMesh(cfg.Width, cfg.Height),
		groups: make(map[uint32][]mgroup),
	}
	for b := 0; b < cfg.Blocks; b++ {
		md.homeOf[b] = uint8(b % md.nodes)
	}
	return md
}

// groupsFor memoizes the scheme's partition of a remote-sharer mask into
// worm groups, reusing the real grouping algorithms verbatim.
func (md *model) groupsFor(home uint8, remote uint16) []mgroup {
	key := uint32(home)<<16 | uint32(remote)
	if g, ok := md.groups[key]; ok {
		return g
	}
	var sharers []topology.NodeID
	for n := 0; n < md.nodes; n++ {
		if remote&(1<<uint(n)) != 0 {
			sharers = append(sharers, topology.NodeID(n))
		}
	}
	gs := grouping.Groups(md.cfg.Scheme, md.mesh, topology.NodeID(home), sharers)
	out := make([]mgroup, len(gs))
	for i, g := range gs {
		mg := mgroup{members: make([]uint8, len(g.Members))}
		for j, mem := range g.Members {
			mg.members[j] = uint8(mem)
			mg.mask |= 1 << uint(mem)
			if j < len(g.Members)-1 {
				mg.preMask |= 1 << uint(mem)
			}
		}
		out[i] = mg
	}
	md.groups[key] = out
	return out
}

func (md *model) initial() mstate {
	return mstate{}
}

// sortMsgs puts the message multiset into canonical order, so states that
// differ only in message bookkeeping order hash identically.
func sortMsgs(msgs []mmsg) {
	sort.Slice(msgs, func(i, j int) bool {
		a, b := msgs[i], msgs[j]
		if a.typ != b.typ {
			return a.typ < b.typ
		}
		if a.block != b.block {
			return a.block < b.block
		}
		if a.epoch != b.epoch {
			return a.epoch < b.epoch
		}
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		if a.gi != b.gi {
			return a.gi < b.gi
		}
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		if a.gen != b.gen {
			return a.gen < b.gen
		}
		return !a.retry && b.retry
	})
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// encode canonicalizes st (sorting its messages in place) and renders it as
// a compact byte-string key that decode inverts exactly.
func (md *model) encode(st *mstate) string {
	sortMsgs(st.msgs)
	buf := make([]byte, 0, 64+10*len(st.msgs))
	for n := 0; n < md.nodes; n++ {
		for b := 0; b < md.cfg.Blocks; b++ {
			buf = append(buf, byte(st.cache[n][b]))
		}
		op := st.op[n]
		buf = append(buf, boolByte(op.active)|boolByte(op.write)<<1|boolByte(op.squash)<<2|
			boolByte(op.dinval)<<3|boolByte(op.dlast)<<4,
			op.block, st.used[n], op.dgi, byte(op.depoch), byte(op.depoch>>8))
	}
	for b := 0; b < md.cfg.Blocks; b++ {
		d := st.dir[b]
		buf = append(buf, byte(d.st), d.owner, byte(d.shr), byte(d.shr>>8),
			boolByte(d.fetch)|boolByte(d.fetchWrite)<<1, d.fetchReq, d.fetchOwner)
		t := st.txn[b]
		buf = append(buf, boolByte(t.active)|boolByte(t.homePending)<<1,
			byte(t.epoch), byte(t.epoch>>8), t.home, t.requester,
			byte(t.remote), byte(t.remote>>8),
			byte(t.unacked), byte(t.unacked>>8),
			byte(t.mustPost), byte(t.mustPost>>8),
			byte(t.posted), byte(t.posted>>8),
			t.gen, t.acks,
			byte(st.epoch[b]), byte(st.epoch[b]>>8))
	}
	buf = append(buf, st.timeouts, st.drops, byte(len(st.msgs)))
	for _, m := range st.msgs {
		buf = append(buf, byte(m.typ), m.from, m.to, m.block,
			byte(m.epoch), byte(m.epoch>>8), m.gen, m.gi, m.pos, boolByte(m.retry))
	}
	return string(buf)
}

func (md *model) decode(key string) mstate {
	var st mstate
	buf := []byte(key)
	i := 0
	for n := 0; n < md.nodes; n++ {
		for b := 0; b < md.cfg.Blocks; b++ {
			st.cache[n][b] = lineSt(buf[i])
			i++
		}
		st.op[n] = mop{active: buf[i]&1 != 0, write: buf[i]&2 != 0, squash: buf[i]&4 != 0,
			dinval: buf[i]&8 != 0, dlast: buf[i]&16 != 0,
			block: buf[i+1], dgi: buf[i+3],
			depoch: uint16(buf[i+4]) | uint16(buf[i+5])<<8}
		st.used[n] = buf[i+2]
		i += 6
	}
	for b := 0; b < md.cfg.Blocks; b++ {
		st.dir[b] = mdir{
			st: dirSt(buf[i]), owner: buf[i+1],
			shr:   uint16(buf[i+2]) | uint16(buf[i+3])<<8,
			fetch: buf[i+4]&1 != 0, fetchWrite: buf[i+4]&2 != 0,
			fetchReq: buf[i+5], fetchOwner: buf[i+6],
		}
		i += 7
		st.txn[b] = mtxn{
			active: buf[i]&1 != 0, homePending: buf[i]&2 != 0,
			epoch: uint16(buf[i+1]) | uint16(buf[i+2])<<8,
			home:  buf[i+3], requester: buf[i+4],
			remote:   uint16(buf[i+5]) | uint16(buf[i+6])<<8,
			unacked:  uint16(buf[i+7]) | uint16(buf[i+8])<<8,
			mustPost: uint16(buf[i+9]) | uint16(buf[i+10])<<8,
			posted:   uint16(buf[i+11]) | uint16(buf[i+12])<<8,
			gen:      buf[i+13], acks: buf[i+14],
		}
		st.epoch[b] = uint16(buf[i+15]) | uint16(buf[i+16])<<8
		i += 17
	}
	st.timeouts, st.drops = buf[i], buf[i+1]
	count := int(buf[i+2])
	i += 3
	st.msgs = make([]mmsg, count)
	for k := 0; k < count; k++ {
		st.msgs[k] = mmsg{
			typ: mtyp(buf[i]), from: buf[i+1], to: buf[i+2], block: buf[i+3],
			epoch: uint16(buf[i+4]) | uint16(buf[i+5])<<8,
			gen:   buf[i+6], gi: buf[i+7], pos: buf[i+8], retry: buf[i+9] != 0,
		}
		i += 10
	}
	if i != len(buf) {
		panic("oracle: state decode length mismatch")
	}
	return st
}

// checkState returns the first per-state safety violation, or "". These are
// the invariants that hold at every instant of a correct execution (the
// RelaxedInvariants rules of internal/coherence, specialized to the
// writeback-free model).
func (md *model) checkState(st *mstate) string {
	for b := 0; b < md.cfg.Blocks; b++ {
		writer, valid := -1, 0
		for n := 0; n < md.nodes; n++ {
			switch st.cache[n][b] {
			case lineM:
				if writer >= 0 {
					return fmt.Sprintf("block %d modified at both node %d and node %d", b, writer, n)
				}
				writer = n
				valid++
			case lineS:
				valid++
			case lineI:
			}
		}
		if writer >= 0 && valid > 1 {
			return fmt.Sprintf("block %d modified at node %d alongside %d other valid copies",
				b, writer, valid-1)
		}
		d := &st.dir[b]
		switch d.st {
		case dirE:
			for n := 0; n < md.nodes; n++ {
				if uint8(n) != d.owner && st.cache[n][b] != lineI {
					return fmt.Sprintf("block %d exclusive at node %d but node %d holds %v",
						b, d.owner, n, st.cache[n][b])
				}
			}
		case dirU:
			for n := 0; n < md.nodes; n++ {
				if st.cache[n][b] != lineI {
					return fmt.Sprintf("block %d uncached but node %d holds %v", b, n, st.cache[n][b])
				}
			}
		case dirS:
			for n := 0; n < md.nodes; n++ {
				if st.cache[n][b] == lineM {
					return fmt.Sprintf("block %d shared but node %d holds it modified", b, n)
				}
				if st.cache[n][b] == lineS && d.shr&(1<<uint(n)) == 0 {
					return fmt.Sprintf("block %d cached shared at node %d but absent from presence bits", b, n)
				}
			}
		case dirW:
			// Transient: covered by the single-writer check above.
		}
	}
	return ""
}

// checkTerminal returns the violation a state with no enabled transitions
// exhibits, or "". A clean terminal has every operation retired, every
// transaction completed, no fetch context and an empty network.
func (md *model) checkTerminal(st *mstate) string {
	for n := 0; n < md.nodes; n++ {
		if st.op[n].active {
			return fmt.Sprintf("lost grant: node %d's operation on block %d never completed",
				n, st.op[n].block)
		}
	}
	for b := 0; b < md.cfg.Blocks; b++ {
		if st.txn[b].active {
			return fmt.Sprintf("transaction on block %d never completed (%d sharers unacked)",
				b, bits.OnesCount16(st.txn[b].unacked))
		}
		if st.dir[b].st == dirW {
			return fmt.Sprintf("block %d stuck in waiting state", b)
		}
		if st.dir[b].st == dirE && st.cache[st.dir[b].owner][b] != lineM {
			return fmt.Sprintf("block %d exclusive at node %d but owner holds %v at termination",
				b, st.dir[b].owner, st.cache[st.dir[b].owner][b])
		}
	}
	if len(st.msgs) != 0 {
		return fmt.Sprintf("%d messages still in flight at termination", len(st.msgs))
	}
	return ""
}

// formatState renders a state dump for counterexample traces.
func (md *model) formatState(st *mstate) string {
	out := ""
	for b := 0; b < md.cfg.Blocks; b++ {
		d := &st.dir[b]
		out += fmt.Sprintf("  block %d: dir=%v owner=%d sharers=%s caches=[", b, d.st, d.owner,
			maskString(d.shr, md.nodes))
		for n := 0; n < md.nodes; n++ {
			if n > 0 {
				out += " "
			}
			out += st.cache[n][b].String()
		}
		out += "]"
		if t := &st.txn[b]; t.active {
			out += fmt.Sprintf(" txn#%d gen=%d unacked=%s posted=%s",
				t.epoch, t.gen, maskString(t.unacked, md.nodes), maskString(t.posted, md.nodes))
		}
		out += "\n"
	}
	for _, m := range st.msgs {
		out += fmt.Sprintf("  in flight: %s\n", md.formatMsg(&m))
	}
	return out
}

func (md *model) formatMsg(m *mmsg) string {
	switch m.typ {
	case mMWorm:
		return fmt.Sprintf("worm b%d txn#%d group %d pos %d", m.block, m.epoch, m.gi, m.pos)
	case mGather:
		return fmt.Sprintf("gather b%d txn#%d group %d", m.block, m.epoch, m.gi)
	case mInval:
		kind := "inval"
		if m.retry {
			kind = "retry inval"
		}
		return fmt.Sprintf("%s b%d txn#%d gen%d -> node %d", kind, m.block, m.epoch, m.gen, m.to)
	case mInvalAck:
		return fmt.Sprintf("invalAck b%d txn#%d from node %d", m.block, m.epoch, m.from)
	case mReadReq, mWriteReq, mFetchReq, mFetchInval, mFetchReply, mReadReply, mWriteReply:
		return fmt.Sprintf("%v b%d node %d -> node %d", m.typ, m.block, m.from, m.to)
	default:
		panic("oracle: unknown message type")
	}
}

func maskString(mask uint16, nodes int) string {
	out := "{"
	first := true
	for n := 0; n < nodes; n++ {
		if mask&(1<<uint(n)) == 0 {
			continue
		}
		if !first {
			out += ","
		}
		out += fmt.Sprint(n)
		first = false
	}
	return out + "}"
}
