package oracle

import (
	"fmt"
	"strings"
)

// OpKind classifies one memory operation in a workload or a history.
type OpKind int

const (
	// OpRead is a shared-memory load.
	OpRead OpKind = iota
	// OpWrite is a shared-memory store.
	OpWrite
	// OpFence awaits completion of the issuing node's buffered writes (a
	// release point; meaningful under release consistency only).
	OpFence
	numOpKinds
)

var opKindNames = [numOpKinds]string{"read", "write", "fence"}

func (k OpKind) String() string {
	if k >= 0 && k < numOpKinds {
		return opKindNames[k]
	}
	panic("oracle: unknown op kind")
}

// POMode selects how much program order the checker enforces.
type POMode int

const (
	// POFull is sequential consistency: each node's operations are totally
	// ordered among themselves.
	POFull POMode = iota
	// POFence is the release-consistency obligation: only same-location
	// operations and fence barriers order a node's operations.
	POFence
)

func (p POMode) String() string {
	switch p {
	case POFull:
		return "full"
	case POFence:
		return "fence"
	default:
		panic("oracle: unknown PO mode")
	}
}

// Obs is one completed memory operation as observed at its issuing node.
type Obs struct {
	Kind  OpKind
	Block int
	// Tok is the unique nonzero token this write committed (writes only).
	Tok uint64
	// Saw is the token of the write whose value this read observed; zero
	// means the block's initial value (reads only).
	Saw uint64
}

func (o Obs) String() string {
	switch o.Kind {
	case OpRead:
		return fmt.Sprintf("read b%d saw %d", o.Block, o.Saw)
	case OpWrite:
		return fmt.Sprintf("write b%d tok %d", o.Block, o.Tok)
	case OpFence:
		return "fence"
	default:
		panic("oracle: unknown op kind")
	}
}

// History is a complete multi-node execution record: per-node program-order
// streams of observations plus the per-block global write-commit order the
// run's shadow memory established.
type History struct {
	// Streams holds node n's completed operations in program order.
	Streams [][]Obs
	// Commit maps each block to its write tokens in commit order.
	Commit map[int][]uint64
	// PO selects the program-order obligation (POFull for SC runs, POFence
	// for release-consistency runs).
	PO POMode
}

// Check verifies the history admits a legal total order per the selected
// consistency obligation: writes serialize per block in commit order, and
// every read observes the latest write ordered before it. With the write
// order known, legality reduces to acyclicity of a constraint graph over
// the operations — program-order edges, commit-chain edges, and for each
// read an edge from the write it observed and an edge to that write's
// commit successor. A cycle is returned as a deterministic violation.
func (h *History) Check() error {
	type vert struct {
		node, idx int
		obs       Obs
	}
	var verts []vert
	id := func(node, idx int) int { return -1 } // replaced below

	// Vertex layout: streams flattened in node order.
	offset := make([]int, len(h.Streams)+1)
	for n, stream := range h.Streams {
		offset[n+1] = offset[n] + len(stream)
		for i, o := range stream {
			verts = append(verts, vert{node: n, idx: i, obs: o})
		}
	}
	id = func(node, idx int) int { return offset[node] + idx }

	writer := make(map[uint64]int) // token -> vertex
	for v, vt := range verts {
		if vt.obs.Kind != OpWrite {
			continue
		}
		if vt.obs.Tok == 0 {
			return fmt.Errorf("oracle: node %d op %d: write with zero token", vt.node, vt.idx)
		}
		if w, dup := writer[vt.obs.Tok]; dup {
			return fmt.Errorf("oracle: token %d written by two operations (node %d op %d, node %d op %d)",
				vt.obs.Tok, verts[w].node, verts[w].idx, vt.node, vt.idx)
		}
		writer[vt.obs.Tok] = v
	}

	// next[tok] is the commit-order successor of write tok on its block;
	// first[b] the block's first committed write.
	next := make(map[uint64]uint64)
	first := make(map[int]uint64)
	pos := make(map[uint64]int)
	for b, toks := range h.Commit {
		for i, tok := range toks {
			if _, ok := writer[tok]; !ok {
				return fmt.Errorf("oracle: block %d commit order lists token %d no stream wrote", b, tok)
			}
			if verts[writer[tok]].obs.Block != b {
				return fmt.Errorf("oracle: token %d committed on block %d but written to block %d",
					tok, b, verts[writer[tok]].obs.Block)
			}
			if _, dup := pos[tok]; dup {
				return fmt.Errorf("oracle: token %d appears twice in commit order", tok)
			}
			pos[tok] = i
			if i == 0 {
				first[b] = tok
			} else {
				next[toks[i-1]] = tok
			}
		}
	}
	for tok, v := range writer {
		if _, ok := pos[tok]; !ok {
			return fmt.Errorf("oracle: node %d op %d: write token %d missing from commit order",
				verts[v].node, verts[v].idx, tok)
		}
	}

	adj := make([][]int32, len(verts))
	edge := func(u, v int) { adj[u] = append(adj[u], int32(v)) }

	// Program order.
	for n, stream := range h.Streams {
		switch h.PO {
		case POFull:
			for i := 1; i < len(stream); i++ {
				edge(id(n, i-1), id(n, i))
			}
		case POFence:
			lastFence := -1
			var sinceFence []int
			lastOnBlock := make(map[int]int)
			for i, o := range stream {
				v := id(n, i)
				if lastFence >= 0 {
					edge(lastFence, v)
				}
				if o.Kind == OpFence {
					for _, u := range sinceFence {
						edge(u, v)
					}
					sinceFence = sinceFence[:0]
					lastFence = v
					continue
				}
				if prev, ok := lastOnBlock[o.Block]; ok {
					edge(prev, v)
				}
				lastOnBlock[o.Block] = v
				sinceFence = append(sinceFence, v)
			}
		default:
			panic("oracle: unknown PO mode")
		}
	}

	// Commit chains.
	for _, toks := range h.Commit {
		for i := 1; i < len(toks); i++ {
			edge(writer[toks[i-1]], writer[toks[i]])
		}
	}

	// Reads-from: the observed write precedes the read; the read precedes
	// the observed write's commit successor (else the read would have seen
	// the successor). A read of the initial value precedes the block's
	// first write.
	for v, vt := range verts {
		if vt.obs.Kind != OpRead {
			continue
		}
		if vt.obs.Saw == 0 {
			if tok, ok := first[vt.obs.Block]; ok {
				edge(v, writer[tok])
			}
			continue
		}
		w, ok := writer[vt.obs.Saw]
		if !ok {
			return fmt.Errorf("oracle: node %d op %d: read of block %d saw untracked token %d",
				vt.node, vt.idx, vt.obs.Block, vt.obs.Saw)
		}
		if verts[w].obs.Block != vt.obs.Block {
			return fmt.Errorf("oracle: node %d op %d: read of block %d saw token %d written to block %d",
				vt.node, vt.idx, vt.obs.Block, vt.obs.Saw, verts[w].obs.Block)
		}
		edge(w, v)
		if succ, ok := next[vt.obs.Saw]; ok {
			edge(v, writer[succ])
		}
	}

	// Cycle detection: iterative DFS in vertex order, colors white/grey/
	// black; a back edge closes a cycle.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]byte, len(verts))
	parent := make([]int32, len(verts))
	for i := range parent {
		parent[i] = -1
	}
	for root := range verts {
		if color[root] != white {
			continue
		}
		type frame struct {
			v  int
			ei int
		}
		stack := []frame{{v: root}}
		color[root] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ei >= len(adj[f.v]) {
				color[f.v] = black
				stack = stack[:len(stack)-1]
				continue
			}
			w := int(adj[f.v][f.ei])
			f.ei++
			switch color[w] {
			case white:
				color[w] = grey
				parent[w] = int32(f.v)
				stack = append(stack, frame{v: w})
			case grey:
				// Cycle: walk parents from f.v back to w.
				cycle := []int{w}
				for v := f.v; v != w; v = int(parent[v]) {
					cycle = append(cycle, v)
				}
				var sb strings.Builder
				sb.WriteString("oracle: history admits no legal total order; cycle:")
				for i := len(cycle) - 1; i >= 0; i-- {
					vt := verts[cycle[i]]
					fmt.Fprintf(&sb, "\n  node %d op %d: %s", vt.node, vt.idx, vt.obs)
				}
				return fmt.Errorf("%s", sb.String())
			case black:
			}
		}
	}
	return nil
}
