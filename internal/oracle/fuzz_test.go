package oracle

import (
	"testing"
)

// fuzzRound runs one decoded input through the harness and fails on any
// oracle violation. Both fuzz targets share it; they differ only in
// whether the decoder arms the fault plan.
func fuzzRound(t *testing.T, data []byte, allowFaults bool) {
	cfg, err := DecodeRunConfig(data, allowFaults)
	if err != nil {
		t.Skip()
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("harness rejected decoded config %s: %v", cfg, err)
	}
	if !res.OK() {
		t.Fatalf("oracle violation:\n%s", res.Report())
	}
}

// fuzzSeeds is the hand-picked seed corpus: each entry pins a regime the
// fuzzer should start from (schemes x consistency x cache bound x faults),
// with an op tail dense in block-0 contention. The byte layout is
// documented on DecodeRunConfig.
func fuzzSeeds() [][]byte {
	head := func(k, scheme, cons, lines, seed byte) []byte {
		return []byte{k, scheme, cons, lines, seed, 0, 0x2a, 0x15}
	}
	// Contention tail: every node hammers block 0 with a read/write mix,
	// plus a spread of reads over blocks 1-5.
	var tail []byte
	for i := byte(0); i < 16; i++ {
		tail = append(tail, 2+(i%3)*4, i)  // write/fence block (i%3)
		tail = append(tail, (i%6)<<2, i*7) // read block i%6
	}
	var seeds [][]byte
	for scheme := byte(0); scheme < 9; scheme++ {
		seeds = append(seeds, append(head(scheme%3, scheme, scheme&1, scheme%4, scheme*17), tail...))
	}
	return seeds
}

// FuzzProtocol fuzzes fault-free executions: mesh shape, scheme, SC or RC,
// cache bound, chaos schedule, and op order all come from the input bytes.
// Every execution must complete, quiesce, satisfy the global coherence
// invariants, and record a history with a legal total order.
func FuzzProtocol(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzRound(t, data, false)
	})
}

// FuzzProtocolFaults fuzzes fault-injected executions: the input also
// selects worm-drop, ack-loss, link-stall, and router-slowdown rates, and
// the run must additionally keep the liveness watchdog quiet while
// recovery masks every fault.
func FuzzProtocolFaults(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzRound(t, data, true)
	})
}
