package oracle

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/directory"
	"repro/internal/faults"
	"repro/internal/grouping"
	"repro/internal/topology"
)

// Op is one operation of a harness workload, addressed to a node's
// program-order stream.
type Op struct {
	Node  int
	Block int
	Kind  OpKind
}

// RunConfig describes one full-machine oracle run: the simulated machine's
// shape, an optional fault plan, and the workload.
type RunConfig struct {
	Width, Height int
	Scheme        grouping.Scheme
	Consistency   coherence.Consistency
	// CacheLines bounds each cache (0 = unbounded), exercising eviction.
	CacheLines int
	// ChaosSeed, when nonzero, randomizes same-cycle event tie-breaking.
	ChaosSeed uint64
	// Fault, when non-nil, enables deterministic fault injection; recovery
	// is then mandatory.
	Fault *faults.Config
	// Recovery enables the home's i-ack timeout retry machinery.
	Recovery bool
	// MaxRetries overrides the recovery retry budget when positive.
	MaxRetries int
	// Ops lists the workload; list order within one node is that node's
	// program order, and streams of different nodes run concurrently.
	Ops []Op
	// CheckEvery runs the relaxed global invariant check after every
	// CheckEvery completed operations (0 = only at the end).
	CheckEvery int
	// Watchdog arms the network liveness watchdog; any firing is a
	// verification failure.
	Watchdog bool
}

func (c RunConfig) String() string {
	fault := "none"
	if c.Fault != nil {
		fault = fmt.Sprintf("drop=%g ackloss=%g stall=%g slow=%g seed=%#x",
			c.Fault.DropRate, c.Fault.AckLossRate, c.Fault.LinkStallRate,
			c.Fault.RouterSlowRate, c.Fault.Seed)
		if c.Fault.HardFaults() {
			fault += fmt.Sprintf(" deadlinks=%d deadrouters=%d crashes=%d window=%d",
				c.Fault.DeadLinks, c.Fault.DeadRouters, c.Fault.CrashedNodes, c.Fault.DeathWindow)
		}
	}
	return fmt.Sprintf("%dx%d %v %v lines=%d chaos=%d recovery=%v fault={%s} ops=%d",
		c.Width, c.Height, c.Scheme, c.Consistency, c.CacheLines, c.ChaosSeed,
		c.Recovery, fault, len(c.Ops))
}

// RunResult is the outcome of one harness run: the recorded history plus
// every verification failure found. Failures are data, not errors — Run
// returns an error only for unusable configurations.
type RunResult struct {
	Config    RunConfig
	History   *History
	Completed int
	// Skipped counts operations abandoned because their node's processor
	// crashed before they could issue (hard-fault runs only): a fail-silent
	// processor issues nothing, so its remaining program order is dropped
	// rather than failed.
	Skipped  int
	Cycles   uint64
	Failures []string
}

// OK reports whether the run passed every oracle.
func (r *RunResult) OK() bool { return len(r.Failures) == 0 }

// Report renders a deterministic human-readable summary.
func (r *RunResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "run %s\n", r.Config)
	fmt.Fprintf(&sb, "  completed=%d cycles=%d po=%v\n", r.Completed, r.Cycles, r.History.PO)
	if r.Skipped > 0 {
		fmt.Fprintf(&sb, "  skipped=%d (issued after a processor crash)\n", r.Skipped)
	}
	blocks := make([]int, 0, len(r.History.Commit))
	for b := range r.History.Commit {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		fmt.Fprintf(&sb, "  block %d: %d writes committed\n", b, len(r.History.Commit[b]))
	}
	if r.OK() {
		sb.WriteString("  result: PASS\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "  result: FAIL (%d failures)\n", len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(&sb, "  - %s\n", f)
	}
	return sb.String()
}

// Run executes the workload on a real coherence.Machine while a shadow
// memory tracks, per block, the global write-commit order and, per node,
// the write whose value each cached copy holds. After the run it checks
// completion, quiescence, the strict global invariants, watchdog silence,
// and finally that the recorded history admits a legal total order
// (History.Check) under the configured consistency model.
//
// The shadow's soundness rests on two machine properties: the simulation
// engine executes each event atomically (a cache fill and its op-done
// callback cannot interleave with other nodes' activity), and the
// deferral/squash rules guarantee no fill ever installs a copy older
// than the block's latest committed write — a fill racing a
// directory-targeted invalidation installs before the deferred ack lets
// the write commit, and a squashed fill installs nothing — so a fill
// observing the shadow's latest token is exact, not approximate.
func Run(cfg RunConfig) (*RunResult, error) {
	if cfg.Width < 1 || cfg.Height < 1 || cfg.Width*cfg.Height < 2 {
		return nil, fmt.Errorf("oracle: mesh %dx%d too small", cfg.Width, cfg.Height)
	}
	if cfg.Fault != nil && !cfg.Recovery {
		return nil, fmt.Errorf("oracle: fault injection requires recovery")
	}
	nodes := cfg.Width * cfg.Height
	perNode := make([][]Op, nodes)
	for i, op := range cfg.Ops {
		if op.Node < 0 || op.Node >= nodes {
			return nil, fmt.Errorf("oracle: op %d: node %d out of range", i, op.Node)
		}
		if op.Kind != OpFence && op.Block < 0 {
			return nil, fmt.Errorf("oracle: op %d: negative block", i)
		}
		if op.Kind == OpFence && cfg.Consistency != coherence.ReleaseConsistency {
			return nil, fmt.Errorf("oracle: op %d: fence under sequential consistency", i)
		}
		perNode[op.Node] = append(perNode[op.Node], op)
	}

	p := coherence.DefaultParams(cfg.Width, cfg.Scheme)
	p.MeshWidth, p.MeshHeight = cfg.Width, cfg.Height
	p.Consistency = cfg.Consistency
	p.CacheLines = cfg.CacheLines
	if cfg.Recovery {
		p.Recovery = coherence.DefaultRecovery()
		if cfg.MaxRetries > 0 {
			p.Recovery.MaxRetries = cfg.MaxRetries
		}
	}
	var inj *faults.Injector
	if cfg.Fault != nil {
		// faults.New returns a typed-nil *Injector for a no-op config;
		// storing that in the interface field would make it non-nil and
		// crash the network on a nil receiver.
		if i := faults.New(*cfg.Fault); i != nil {
			p.Fault = i
			inj = i
		}
	}
	m := coherence.NewMachine(p)
	if cfg.ChaosSeed != 0 {
		m.Engine.Chaos(cfg.ChaosSeed)
	}

	res := &RunResult{Config: cfg}
	fail := func(format string, a ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, a...))
	}
	if cfg.Watchdog {
		m.Net.StartWatchdog(p.Recovery.Timeout<<8, 3, func(d string) {
			fail("liveness watchdog fired:\n%s", d)
		})
	}

	// Shadow memory. ver[n][b] is the token whose value node n's valid
	// copy of b holds; latest[b] the newest committed token; pending[n][b]
	// node n's store buffer (RC write misses awaiting their grant).
	ver := make([]map[int]uint64, nodes)
	pending := make([]map[int][]uint64, nodes)
	for n := range ver {
		ver[n] = make(map[int]uint64)
		pending[n] = make(map[int][]uint64)
	}
	latest := make(map[int]uint64)
	commit := make(map[int][]uint64)
	streams := make([][]Obs, nodes)
	// squashSaw[n][b], when present, is the value a squashed read miss at
	// node n will consume: the block's latest committed token at the moment
	// the first invalidation squashed it. Squashes come only from
	// broadcast/coarse or retried invalidations (directory-targeted ones
	// defer past the fill and install normally). When the squashed read had
	// already been served, this is exactly the fill's data: the home
	// serialized the read before the squashing write, and that write cannot
	// commit until this node's acknowledgment (sent at the squash) arrives.
	// In the one remaining corner — a retry catching a re-request still
	// queued at the home, whose fill is served only after the transaction —
	// the recorded pre-write token is the weaker of the two legal outcomes;
	// it can never manufacture a spurious SC cycle, because ordering the
	// load before the write is consistent with everything a correct run can
	// observe.
	squashSaw := make([]map[int]uint64, nodes)
	for n := range squashSaw {
		squashSaw[n] = make(map[int]uint64)
	}
	m.OnSquash = func(n topology.NodeID, b directory.BlockID) {
		squashSaw[int(n)][int(b)] = latest[int(b)]
	}
	commitTok := func(n, b int, tok uint64) {
		commit[b] = append(commit[b], tok)
		latest[b] = tok
		ver[n][b] = tok
	}
	for n := 0; n < nodes; n++ {
		n := n
		m.Cache(topology.NodeID(n)).OnChange = func(b directory.BlockID, from, to cache.LineState) {
			blk := int(b)
			switch to {
			case cache.Invalid:
				delete(ver[n], blk)
			case cache.SharedLine:
				// A fill observes the latest committed write (exact: the
				// squash rule forbids stale installs); a downgrade keeps
				// the owner's value, which is by definition the latest.
				ver[n][blk] = latest[blk]
			case cache.ModifiedLine:
				// An ownership grant retires this node's buffered writes
				// to the block in FIFO order.
				for _, tok := range pending[n][blk] {
					commitTok(n, blk, tok)
				}
				delete(pending[n], blk)
				if _, ok := ver[n][blk]; !ok {
					ver[n][blk] = latest[blk]
				}
			}
		}
	}

	completed := 0
	checked := 0
	afterOp := func() {
		completed++
		if cfg.CheckEvery > 0 && completed-checked >= cfg.CheckEvery {
			checked = completed
			if err := m.CheckInvariantsMode(coherence.RelaxedInvariants); err != nil {
				fail("relaxed invariants after %d ops: %v", completed, err)
			}
		}
	}

	var tokCounter uint64
	var issue func(n int)
	idx := make([]int, nodes)
	issue = func(n int) {
		if idx[n] >= len(perNode[n]) {
			return
		}
		if inj != nil && inj.CrashedAt(topology.NodeID(n), m.Engine.Now()) {
			// The node's processor crashed (fail-silent): the rest of its
			// program order is abandoned, not failed. Ops already in flight
			// completed before this point — issue is re-entered only from
			// their completion callbacks.
			res.Skipped += len(perNode[n]) - idx[n]
			idx[n] = len(perNode[n])
			return
		}
		op := perNode[n][idx[n]]
		idx[n]++
		node := topology.NodeID(n)
		b := directory.BlockID(op.Block)
		blk := op.Block
		switch op.Kind {
		case OpRead:
			m.Read(node, b, func() {
				var saw uint64
				if ps := pending[n][blk]; len(ps) > 0 {
					// Store-buffer forwarding: the read saw this node's
					// youngest not-yet-committed write.
					saw = ps[len(ps)-1]
				} else if sv, ok := squashSaw[n][blk]; ok {
					// Squashed miss: the load consumed its fill without
					// installing, ordered just before the squashing write.
					saw = sv
					delete(squashSaw[n], blk)
				} else {
					saw = ver[n][blk]
				}
				streams[n] = append(streams[n], Obs{Kind: OpRead, Block: blk, Saw: saw})
				afterOp()
				issue(n)
			})
		case OpWrite:
			tokCounter++
			tok := tokCounter
			if cfg.Consistency == coherence.ReleaseConsistency {
				m.WriteAsync(node, b, func() {
					if m.Cache(node).State(b) == cache.ModifiedLine {
						// Write hit: committed on the spot. (A pending
						// buffered write would have kept the line non-M.)
						commitTok(n, blk, tok)
					} else {
						pending[n][blk] = append(pending[n][blk], tok)
					}
					streams[n] = append(streams[n], Obs{Kind: OpWrite, Block: blk, Tok: tok})
					afterOp()
					issue(n)
				})
				return
			}
			m.Write(node, b, func() {
				commitTok(n, blk, tok)
				streams[n] = append(streams[n], Obs{Kind: OpWrite, Block: blk, Tok: tok})
				afterOp()
				issue(n)
			})
		case OpFence:
			m.Fence(node, func() {
				streams[n] = append(streams[n], Obs{Kind: OpFence})
				afterOp()
				issue(n)
			})
		default:
			panic("oracle: unknown op kind")
		}
	}
	for n := 0; n < nodes; n++ {
		issue(n)
	}
	m.Engine.Run()

	res.Completed = completed
	res.Cycles = uint64(m.Engine.Now())
	po := POFull
	if cfg.Consistency == coherence.ReleaseConsistency {
		po = POFence
	}
	res.History = &History{Streams: streams, Commit: commit, PO: po}

	if want := len(cfg.Ops) - res.Skipped; completed != want {
		fail("only %d/%d operations completed (%d skipped by crashes):\n%s",
			completed, want, res.Skipped, m.Net.Diagnose())
		return res, nil
	}
	if !m.Quiesced() {
		fail("network not quiesced after engine drain")
	}
	if err := m.CheckInvariants(); err != nil {
		fail("final invariants: %v", err)
	}
	if err := res.History.Check(); err != nil {
		fail("%v", err)
	}
	return res, nil
}
