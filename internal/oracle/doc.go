// Package oracle is the protocol-correctness subsystem: three independent
// oracles that judge the coherence protocol under interleavings the golden
// seeds never visit.
//
//  1. An exhaustive model checker (Explore): a compact abstract model of
//     the directory/cache/transaction state machine at small configs
//     (2x2-2x4 meshes, 1-2 blocks, bounded faults) explored by BFS over
//     canonicalized states, checking single-writer/exclusive-isolation
//     safety at every state — not just quiescence — plus termination and
//     recovery-rejoin liveness, with a minimal counterexample trace on
//     violation. Seeded mutations (Mutation) prove the checker's teeth.
//
//  2. A sequential-consistency checker (History.Check): per-node load/store
//     observations recorded from real Machine runs are verified post-hoc to
//     admit a legal total order per block, by cycle-detecting a constraint
//     graph built from program order, the per-block write commit order, and
//     reads-from edges.
//
//  3. A workload fuzzer (FuzzProtocol, FuzzProtocolFaults in the test
//     files): native go-fuzz harnesses decode a byte corpus into (mesh,
//     scheme, consistency, fault plan, op schedule), run the real machine
//     through the harness (Run), and assert the SC checker, the coherence
//     invariants (relaxed mid-flight, strict at quiescence) and a quiet
//     liveness watchdog. cmd/oracle replays and minimizes corpus inputs
//     deterministically.
//
// Everything in this package is deterministic: reports are byte-identical
// across runs, test -parallel settings and host machines.
package oracle
