// Package sweep is the parallel experiment-sweep engine: it fans a grid of
// invalidation-experiment points (scheme x mesh size x sharer distribution
// x seed) out across a pool of worker goroutines, each running a fully
// isolated sim.Engine + coherence.Machine, and merges the results through a
// single aggregation channel into point order.
//
// Determinism: every point carries its own RNG seed (derived with splitmix
// from a base seed and the point index, see sim.DeriveSeed), every point
// runs on a private machine, and aggregation is by point index rather than
// completion order — so the output of a parallel sweep is bit-for-bit
// identical to the sequential run, just N-cores faster. The determinism
// regression test in determinism_test.go pins this property, including
// under chaos event ordering.
//
// Robustness: Run honors context cancellation, supports a wall-clock
// per-point timeout that marks a point's result partial instead of failing
// the sweep, and can checkpoint completed points to a JSON file so a killed
// sweep resumes at the first unfinished point (see checkpoint.go).
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/coherence"
	"repro/internal/faults"
	"repro/internal/grouping"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Point is one cell of a sweep grid. Index must equal the point's position
// in the slice passed to Run; it keys checkpoint entries and seed
// derivation, so it must be stable across resumed runs.
type Point struct {
	Index   int              `json:"index"`
	K       int              `json:"k"`
	Scheme  grouping.Scheme  `json:"scheme"`
	D       int              `json:"d"`
	Pattern workload.Pattern `json:"pattern"`
	Trials  int              `json:"trials"`
	Seed    uint64           `json:"seed"`
	// ChaosSeed, when nonzero, runs the point's machine under chaos
	// (seeded-random same-time) event ordering.
	ChaosSeed uint64 `json:"chaos_seed,omitempty"`
	// Faults, when non-nil and enabled, injects deterministic faults into
	// the point's fabric and arms the protocol recovery machinery (see
	// internal/faults). It serializes into the checkpoint fingerprint, so a
	// resumed sweep must use the same fault mix it was started with.
	Faults *faults.Config `json:"faults,omitempty"`
	// Tune adjusts machine parameters before construction. It is not part
	// of the checkpoint fingerprint (functions cannot be serialized):
	// resuming a sweep whose Tune behavior changed is the caller's bug.
	Tune func(*coherence.Params) `json:"-"`
}

// Measures is the serializable outcome of one point — the per-transaction
// means the paper's tables are built from, plus the full latency sample.
type Measures struct {
	Latency   sim.Sample `json:"latency"`
	HomeMsgs  float64    `json:"home_msgs"`
	Groups    float64    `json:"groups"`
	FlitHops  float64    `json:"flit_hops"`
	Messages  float64    `json:"messages"`
	Completed int        `json:"completed"`
	// Retries and Drops are the fault-recovery means (per transaction and
	// per trial respectively); zero for fault-free points, so old
	// checkpoints without the fields load unchanged.
	Retries float64 `json:"retries,omitempty"`
	Drops   float64 `json:"drops,omitempty"`
	// Fallbacks and Purges are the hard-fault degradation means (MI->UI
	// group fallbacks and dead-link worm purges per trial); zero without
	// hard faults, so old checkpoints load unchanged.
	Fallbacks float64 `json:"fallbacks,omitempty"`
	Purges    float64 `json:"purges,omitempty"`
}

// MeasuresOf extracts the serializable measures from an InvalResult.
func MeasuresOf(r workload.InvalResult) Measures {
	return Measures{
		Latency:   r.Latency,
		HomeMsgs:  r.HomeMsgs,
		Groups:    r.Groups,
		FlitHops:  r.FlitHops,
		Messages:  r.Messages,
		Completed: r.Completed,
		Retries:   r.Retries,
		Drops:     r.Drops,
		Fallbacks: r.Fallbacks,
		Purges:    r.Purges,
	}
}

// Result is one point's outcome.
type Result struct {
	Point    Point    `json:"point"`
	Measures Measures `json:"measures"`
	// Partial marks a point stopped early by cancellation or the per-point
	// timeout: Measures covers only Measures.Completed of Point.Trials
	// trials. Partial points are re-run on resume.
	Partial bool `json:"partial,omitempty"`
	// Retried marks a point that hit the per-point timeout on its first
	// attempt and was re-run with a doubled budget.
	Retried bool `json:"retried,omitempty"`
	// Quarantined marks a point that timed out on the retry as well: its
	// result stays partial, the sweep moves on, and the point is flagged in
	// the checkpoint and progress output so the operator can investigate
	// (typically a pathological configuration, not a transient).
	Quarantined bool `json:"quarantined,omitempty"`
	// Resumed marks a result loaded from a checkpoint rather than run.
	Resumed bool `json:"-"`
	// Elapsed is the wall-clock run time of the point. It is deliberately
	// excluded from serialization: it is the one nondeterministic field.
	Elapsed time.Duration `json:"-"`
	// Ran reports whether the point executed (or was resumed) at all;
	// false means the sweep was cancelled before the point started.
	Ran bool `json:"-"`
}

// Options configures Run. The zero value runs with GOMAXPROCS workers, no
// timeout, no progress reporting and no checkpointing.
type Options struct {
	// Parallel is the worker count; <= 0 means runtime.GOMAXPROCS(0).
	Parallel int
	// PointTimeout, when positive, bounds each point's wall-clock run time.
	// A point that exceeds it stops at the next trial boundary and its
	// result is marked Partial — the sweep itself keeps going. Timeouts are
	// wall-clock and therefore nondeterministic; leave zero for
	// reproducibility-critical runs.
	PointTimeout time.Duration
	// OnProgress, when set, receives a Progress update after every
	// completed point. It is called from a single goroutine.
	OnProgress func(Progress)
	// CheckpointPath, when nonempty, persists completed points to this JSON
	// file after each point, so a killed sweep can be resumed.
	CheckpointPath string
	// Resume loads CheckpointPath (if it exists) and skips the points it
	// records as complete. The checkpoint's point-grid fingerprint must
	// match, otherwise Run fails rather than mixing incompatible sweeps.
	Resume bool
	// RunPoint substitutes the point runner; nil runs the engine directly
	// (RunPointDirect). The serving layer (internal/service) intercepts
	// here to route points through its content-addressed cache and
	// coalescing batcher; tests use it to fake the engine. A substitute
	// must preserve the engine's contract: identical points yield identical
	// Measures, and a context-cancelled run returns Measures.Completed <
	// Point.Trials.
	RunPoint func(ctx context.Context, p Point) (Measures, *metrics.Collector)
}

// Validate checks the options for contradictions that Run would otherwise
// surface late or silently normalize. Run calls it first; the CLIs and the
// daemon also call it at flag-parse time so misconfigurations fail before
// any point runs.
func (o Options) Validate() error {
	if o.Parallel < 0 {
		return fmt.Errorf("sweep: Parallel is %d; want >= 0 (0 means all cores)", o.Parallel)
	}
	if o.PointTimeout < 0 {
		return fmt.Errorf("sweep: PointTimeout is %v; want >= 0 (0 means no timeout)", o.PointTimeout)
	}
	if o.Resume && o.CheckpointPath == "" {
		return fmt.Errorf("sweep: Resume requires CheckpointPath")
	}
	return nil
}

// Summary is the outcome of a sweep.
type Summary struct {
	// Results holds one entry per point, in point order regardless of
	// completion order.
	Results []Result
	// Agg is the merge, in point order, of the per-point machines'
	// metrics.Collector state — for freshly run points only (checkpoints
	// store Measures, not raw collectors).
	Agg *metrics.Collector
	// Elapsed is the sweep's wall-clock duration.
	Elapsed time.Duration
	// Completed counts points with a result (fresh or resumed); Partial
	// counts results marked partial; Resumed counts checkpoint hits;
	// Quarantined counts points that timed out even on their doubled-budget
	// retry.
	Completed, Partial, Resumed, Quarantined int
}

// RunPointDirect is the production point runner: one isolated machine per
// point via workload.RunInval. It is exported so layers that substitute
// Options.RunPoint (the serving daemon's cache/coalesce hook) can fall
// through to the real engine.
func RunPointDirect(ctx context.Context, p Point) (Measures, *metrics.Collector) {
	res := workload.RunInval(workload.InvalConfig{
		K: p.K, Scheme: p.Scheme, D: p.D, Pattern: p.Pattern,
		Trials: p.Trials, Seed: p.Seed, ChaosSeed: p.ChaosSeed,
		Faults: p.Faults, Tune: p.Tune,
		Interrupt: func() bool { return ctx.Err() != nil },
	})
	return MeasuresOf(res), res.Metrics
}

// Run executes every point and returns the merged summary. It returns early
// (with the results gathered so far and ctx.Err) when ctx is cancelled:
// queued points are abandoned, in-flight points stop at their next trial
// boundary and are marked Partial.
func Run(ctx context.Context, points []Point, opts Options) (*Summary, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	for i := range points {
		if points[i].Index != i {
			return nil, fmt.Errorf("sweep: point %d has Index %d (must equal position)", i, points[i].Index)
		}
		if points[i].Trials < 1 {
			return nil, fmt.Errorf("sweep: point %d has Trials %d (must be >= 1)", i, points[i].Trials)
		}
	}
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(points) {
		parallel = len(points)
	}
	run := opts.RunPoint
	if run == nil {
		run = RunPointDirect
	}

	var ck *checkpoint
	resumed := map[int]savedResult{}
	if opts.CheckpointPath != "" {
		ck = newCheckpoint(opts.CheckpointPath, points)
		if opts.Resume {
			var err error
			if resumed, err = ck.load(); err != nil {
				return nil, err
			}
		}
	}

	start := time.Now() //simcheck:allow determinism -- wall-clock ETA reporting, not simulation state
	sum := &Summary{
		Results: make([]Result, len(points)),
		Agg:     metrics.NewCollector(0),
	}
	for i, p := range points {
		sum.Results[i] = Result{Point: p}
		if sr, ok := resumed[i]; ok {
			sum.Results[i] = Result{Point: p, Measures: sr.Measures, Resumed: true, Ran: true}
			sum.Resumed++
			sum.Completed++
			if ck != nil {
				ck.record(sum.Results[i])
			}
		}
	}

	type outcome struct {
		res  Result
		coll *metrics.Collector
	}
	jobs := make(chan int)
	results := make(chan outcome) // the single aggregation channel

	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				p := points[i]
				runOnce := func(budget time.Duration) (Measures, *metrics.Collector) {
					pctx := ctx
					cancel := func() {}
					if budget > 0 {
						pctx, cancel = context.WithTimeout(ctx, budget)
					}
					defer cancel()
					return run(pctx, p)
				}
				t0 := time.Now() //simcheck:allow determinism -- per-point wall-clock timing for reports
				meas, coll := runOnce(opts.PointTimeout)
				res := Result{Point: p, Ran: true}
				if meas.Completed < p.Trials && opts.PointTimeout > 0 && ctx.Err() == nil {
					// The point hit its own timeout (the sweep itself was not
					// cancelled): retry once from scratch with a doubled
					// budget. Determinism is unharmed — the rerun replays the
					// same seeds, and a completed retry's result is identical
					// to what an untimed run would have produced.
					res.Retried = true
					meas, coll = runOnce(2 * opts.PointTimeout)
					if meas.Completed < p.Trials && ctx.Err() == nil {
						res.Quarantined = true
					}
				}
				res.Measures = meas
				res.Partial = meas.Completed < p.Trials
				res.Elapsed = time.Since(t0) //simcheck:allow determinism -- wall-clock elapsed, reporting only
				results <- outcome{res: res, coll: coll}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range points {
			if _, ok := resumed[i]; ok {
				continue
			}
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	collectors := make([]*metrics.Collector, len(points))
	for out := range results {
		i := out.res.Point.Index
		sum.Results[i] = out.res
		collectors[i] = out.coll
		sum.Completed++
		if out.res.Partial {
			sum.Partial++
		}
		if out.res.Quarantined {
			sum.Quarantined++
		}
		// Complete points checkpoint as resumable; quarantined points are
		// recorded too — flagged, never resumed from — so a later `-resume`
		// run re-attempts them and the operator can see which cells of the
		// grid repeatedly blow their budget.
		if ck != nil && (!out.res.Partial || out.res.Quarantined) {
			ck.record(out.res)
			if err := ck.save(); err != nil {
				return sum, fmt.Errorf("sweep: checkpoint save: %w", err)
			}
		}
		if opts.OnProgress != nil {
			elapsed := time.Since(start) //simcheck:allow determinism -- wall-clock elapsed, reporting only
			opts.OnProgress(Progress{
				Done:         sum.Completed,
				Total:        len(points),
				Partial:      sum.Partial,
				Resumed:      sum.Resumed,
				Quarantined:  sum.Quarantined,
				Last:         out.res.Point,
				Elapsed:      elapsed,
				PointsPerSec: float64(sum.Completed-sum.Resumed) / elapsed.Seconds(),
			})
		}
	}
	// Merge per-point collectors in point order: the aggregate is then
	// independent of completion order.
	for _, c := range collectors {
		sum.Agg.Merge(c)
	}
	sum.Elapsed = time.Since(start) //simcheck:allow determinism -- wall-clock elapsed, reporting only
	return sum, ctx.Err()
}

// Each runs fn(0) .. fn(n-1) on min(parallel, n) worker goroutines and
// returns when all have finished. It is the unordered fan-out primitive for
// experiment cells that do not fit the Point grid (application runs,
// hot-spot bursts): fn must write its result only to its own index's slot,
// and determinism then follows from indexing rather than scheduling order.
// parallel <= 0 means runtime.GOMAXPROCS(0).
func Each(parallel, n int, fn func(i int)) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
