package sweep

import (
	"repro/internal/coherence"
	"repro/internal/faults"
	"repro/internal/grouping"
	"repro/internal/sim"
	"repro/internal/workload"
)

// GridConfig describes a full cross-product sweep: every scheme at every
// mesh size at every sharer count.
type GridConfig struct {
	// Ks are the mesh dimensions (k x k) to sweep.
	Ks []int
	// Schemes are the invalidation frameworks to sweep.
	Schemes []grouping.Scheme
	// Ds are the sharer counts to sweep.
	Ds []int
	// Pattern places the sharers (default random).
	Pattern workload.Pattern
	// Trials is the number of transactions per point (default 10).
	Trials int
	// BaseSeed is the sweep's base seed; every point's RNG seed is derived
	// from it and the point index via sim.DeriveSeed, which is what keeps a
	// resumed or parallel sweep on exactly the random streams of the
	// sequential run.
	BaseSeed uint64
	// Chaos additionally derives a per-point chaos-schedule seed (offset so
	// it never collides with the placement seed stream).
	Chaos bool
	// ClampD clamps D to the mesh's capacity (k*k - 2) instead of letting
	// oversized points panic — the E7-style mesh sweep behavior.
	ClampD bool
	// Faults, when non-nil and enabled, gives every point a copy of this
	// fault mix with a per-point fault seed derived from (Faults.Seed,
	// index) on its own splitmix stream — independent fault schedules per
	// point, reproducible at any worker count.
	Faults *faults.Config
	// Tune adjusts every point's machine parameters.
	Tune func(*coherence.Params)
}

// chaosStreamOffset and faultStreamOffset separate the chaos- and
// fault-seed derivation streams from the placement-seed stream of the same
// base seed.
const (
	chaosStreamOffset = 0x5EED0FCA05
	faultStreamOffset = 0xFA17 + 0x5EED0FCA05<<8
)

// Grid expands the cross product into runnable points, ordered K-major,
// then scheme, then D, with seeds derived from (BaseSeed, index).
func Grid(cfg GridConfig) []Point {
	trials := cfg.Trials
	if trials == 0 {
		trials = 10
	}
	var pts []Point
	for _, k := range cfg.Ks {
		for _, s := range cfg.Schemes {
			for _, d := range cfg.Ds {
				if max := k*k - 2; cfg.ClampD && d > max {
					d = max
				}
				idx := len(pts)
				p := Point{
					Index: idx, K: k, Scheme: s, D: d,
					Pattern: cfg.Pattern, Trials: trials,
					Seed: sim.DeriveSeed(cfg.BaseSeed, uint64(idx)),
					Tune: cfg.Tune,
				}
				if cfg.Chaos {
					p.ChaosSeed = sim.DeriveSeed(cfg.BaseSeed+chaosStreamOffset, uint64(idx))
				}
				if cfg.Faults != nil && cfg.Faults.Enabled() {
					fc := *cfg.Faults
					fc.Seed = sim.DeriveSeed(fc.Seed+faultStreamOffset, uint64(idx))
					p.Faults = &fc
				}
				pts = append(pts, p)
			}
		}
	}
	return pts
}
