package sweep

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/grouping"
	"repro/internal/metrics"
)

// testPoints builds n trivial 4x4 UI-UA points.
func testPoints(n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{Index: i, K: 4, Scheme: grouping.UIUA, D: 2, Trials: 2, Seed: uint64(i) + 1}
	}
	return pts
}

func TestRunValidatesPoints(t *testing.T) {
	bad := testPoints(2)
	bad[1].Index = 5
	if _, err := Run(context.Background(), bad, Options{}); err == nil {
		t.Fatal("misnumbered point accepted")
	}
	bad = testPoints(1)
	bad[0].Trials = 0
	if _, err := Run(context.Background(), bad, Options{}); err == nil {
		t.Fatal("zero-trial point accepted")
	}
}

func TestRunAllPointsOnce(t *testing.T) {
	pts := testPoints(7)
	var calls atomic.Int64
	sum, err := Run(context.Background(), pts, Options{
		Parallel: 3,
		RunPoint: func(ctx context.Context, p Point) (Measures, *metrics.Collector) {
			calls.Add(1)
			m := Measures{HomeMsgs: float64(p.Index), Completed: p.Trials}
			return m, metrics.NewCollector(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 7 || sum.Completed != 7 || sum.Partial != 0 {
		t.Fatalf("calls=%d completed=%d partial=%d", calls.Load(), sum.Completed, sum.Partial)
	}
	for i, r := range sum.Results {
		if !r.Ran || r.Point.Index != i || r.Measures.HomeMsgs != float64(i) {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
	}
}

func TestRunRealPointsMatchSequential(t *testing.T) {
	pts := Grid(GridConfig{
		Ks: []int{4}, Schemes: []grouping.Scheme{grouping.UIUA, grouping.MIMAEC},
		Ds: []int{2, 4}, Trials: 2, BaseSeed: 42,
	})
	seq, err := Run(context.Background(), pts, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), pts, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		a, b := seq.Results[i].Measures, par.Results[i].Measures
		if a.Latency.Mean() != b.Latency.Mean() || a.HomeMsgs != b.HomeMsgs {
			t.Fatalf("point %d differs: %+v vs %+v", i, a, b)
		}
	}
	// The merged collectors must agree too: same transactions, same order.
	if len(seq.Agg.Invals) == 0 || len(seq.Agg.Invals) != len(par.Agg.Invals) {
		t.Fatalf("agg inval counts differ: %d vs %d", len(seq.Agg.Invals), len(par.Agg.Invals))
	}
	for i := range seq.Agg.Invals {
		if seq.Agg.Invals[i] != par.Agg.Invals[i] {
			t.Fatalf("agg inval %d differs", i)
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	pts := testPoints(50)
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	sum, err := Run(ctx, pts, Options{
		Parallel: 2,
		RunPoint: func(ctx context.Context, p Point) (Measures, *metrics.Collector) {
			if calls.Add(1) == 3 {
				cancel()
			}
			if ctx.Err() != nil {
				// Model a point interrupted mid-run: fewer trials than asked.
				return Measures{Completed: p.Trials - 1}, nil
			}
			return Measures{Completed: p.Trials}, nil
		},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sum.Completed >= len(pts) {
		t.Fatalf("cancellation did not skip any points (completed %d)", sum.Completed)
	}
	for _, r := range sum.Results {
		if r.Ran && r.Measures.Completed < r.Point.Trials && !r.Partial {
			t.Fatalf("interrupted point not marked partial: %+v", r)
		}
	}
}

func TestRunPointTimeoutMarksPartial(t *testing.T) {
	pts := testPoints(3)
	sum, err := Run(context.Background(), pts, Options{
		Parallel:     1,
		PointTimeout: 10 * time.Millisecond,
		RunPoint: func(ctx context.Context, p Point) (Measures, *metrics.Collector) {
			if p.Index == 1 {
				// A slow point: observes its deadline and stops early.
				<-ctx.Done()
				return Measures{Completed: 1}, nil
			}
			return Measures{Completed: p.Trials}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Partial != 1 || !sum.Results[1].Partial {
		t.Fatalf("timeout not marked partial: %+v", sum.Results[1])
	}
	// The slow point must not have poisoned its neighbors.
	if sum.Results[0].Partial || sum.Results[2].Partial || sum.Completed != 3 {
		t.Fatalf("timeout leaked into other points: %+v", sum)
	}
}

func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	pts := testPoints(6)

	// First run: cancel after 3 points have completed.
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	var mu sync.Mutex
	ran1 := map[int]bool{}
	_, err := Run(ctx, pts, Options{
		Parallel:       1,
		CheckpointPath: path,
		RunPoint: func(ctx context.Context, p Point) (Measures, *metrics.Collector) {
			mu.Lock()
			ran1[p.Index] = true
			mu.Unlock()
			if calls.Add(1) == 3 {
				cancel()
			}
			return Measures{HomeMsgs: 100 + float64(p.Index), Completed: p.Trials}, nil
		},
	})
	if err != context.Canceled {
		t.Fatalf("first run err = %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Second run resumes: completed points are served from the file.
	ran2 := map[int]bool{}
	sum, err := Run(context.Background(), pts, Options{
		Parallel:       1,
		CheckpointPath: path,
		Resume:         true,
		RunPoint: func(ctx context.Context, p Point) (Measures, *metrics.Collector) {
			mu.Lock()
			ran2[p.Index] = true
			mu.Unlock()
			return Measures{HomeMsgs: 100 + float64(p.Index), Completed: p.Trials}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resumed == 0 || sum.Completed != len(pts) {
		t.Fatalf("resumed=%d completed=%d", sum.Resumed, sum.Completed)
	}
	for i := range pts {
		if ran1[i] && ran2[i] {
			t.Fatalf("point %d re-ran despite checkpoint", i)
		}
		if sum.Results[i].Measures.HomeMsgs != 100+float64(i) {
			t.Fatalf("point %d measures wrong after resume: %+v", i, sum.Results[i].Measures)
		}
	}

	// A grid mismatch must refuse to resume.
	other := testPoints(6)
	other[0].Seed = 999
	if _, err := Run(context.Background(), other, Options{CheckpointPath: path, Resume: true}); err == nil {
		t.Fatal("resumed a checkpoint for a different grid")
	}
}

func TestCheckpointRoundTripsMeasures(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	pts := Grid(GridConfig{
		Ks: []int{4}, Schemes: []grouping.Scheme{grouping.MIMAEC}, Ds: []int{3},
		Trials: 3, BaseSeed: 7,
	})
	fresh, err := Run(context.Background(), pts, Options{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(context.Background(), pts, Options{
		CheckpointPath: path, Resume: true,
		RunPoint: func(ctx context.Context, p Point) (Measures, *metrics.Collector) {
			t.Fatalf("point %d re-ran despite full checkpoint", p.Index)
			return Measures{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := fresh.Results[0].Measures, resumed.Results[0].Measures
	if a.Latency.Mean() != b.Latency.Mean() || a.Latency.N() != b.Latency.N() ||
		a.Latency.Min() != b.Latency.Min() || a.Latency.Max() != b.Latency.Max() ||
		a.HomeMsgs != b.HomeMsgs || a.FlitHops != b.FlitHops ||
		a.Groups != b.Groups || a.Messages != b.Messages || a.Completed != b.Completed {
		t.Fatalf("measures did not survive the checkpoint round trip:\n%+v\n%+v", a, b)
	}
}

func TestGridDerivesDistinctSeeds(t *testing.T) {
	pts := Grid(GridConfig{
		Ks: []int{4, 8}, Schemes: grouping.AllSchemes, Ds: []int{1, 2, 4},
		Trials: 1, BaseSeed: 3, Chaos: true,
	})
	if len(pts) != 2*len(grouping.AllSchemes)*3 {
		t.Fatalf("grid size %d", len(pts))
	}
	seeds := map[uint64]bool{}
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("point %d misnumbered", i)
		}
		if seeds[p.Seed] {
			t.Fatalf("duplicate derived seed at %d", i)
		}
		if p.ChaosSeed == 0 || p.ChaosSeed == p.Seed {
			t.Fatalf("chaos seed not independently derived at %d", i)
		}
		seeds[p.Seed] = true
	}
	// Derivation is a pure function: the same grid derives the same seeds.
	again := Grid(GridConfig{
		Ks: []int{4, 8}, Schemes: grouping.AllSchemes, Ds: []int{1, 2, 4},
		Trials: 1, BaseSeed: 3, Chaos: true,
	})
	for i := range pts {
		if pts[i].Seed != again[i].Seed || pts[i].ChaosSeed != again[i].ChaosSeed {
			t.Fatalf("seed derivation not stable at %d", i)
		}
	}
}

func TestEachCoversAllIndices(t *testing.T) {
	for _, par := range []int{1, 4, 16} {
		hits := make([]atomic.Int64, 100)
		Each(par, len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("parallel=%d: index %d hit %d times", par, i, hits[i].Load())
			}
		}
	}
	Each(4, 0, func(int) { t.Fatal("fn called for empty range") })
}
