package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/grouping"
)

// marshalResults serializes a sweep's deterministic surface (everything but
// wall-clock fields, which carry json:"-" tags) for byte-level comparison.
func marshalResults(t *testing.T, sum *Summary) []byte {
	t.Helper()
	b, err := json.Marshal(sum.Results)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// detGrid is a Table-4-style grid: every scheme over several sharer counts
// on one mesh, seeds derived via splitmix from the base seed.
func detGrid(chaos bool) []Point {
	return Grid(GridConfig{
		Ks:       []int{8},
		Schemes:  grouping.AllSchemes,
		Ds:       []int{1, 4, 8},
		Trials:   3,
		BaseSeed: 1996,
		Chaos:    chaos,
	})
}

// TestDeterminismAcrossParallelism is the regression test for the engine's
// core promise: the aggregated metrics of a sweep are byte-identical
// whether it runs on one worker or eight. Run it under the race detector
// (make check / make race) to certify the worker pool race-clean.
func TestDeterminismAcrossParallelism(t *testing.T) {
	var golden []byte
	for _, parallel := range []int{1, 8} {
		sum, err := Run(context.Background(), detGrid(false), Options{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Partial != 0 || sum.Completed != len(sum.Results) {
			t.Fatalf("parallel=%d: partial=%d completed=%d", parallel, sum.Partial, sum.Completed)
		}
		b := marshalResults(t, sum)
		if golden == nil {
			golden = b
			continue
		}
		if !bytes.Equal(golden, b) {
			t.Fatalf("parallel=%d output differs from parallel=1:\n%s\nvs\n%s", parallel, golden, b)
		}
	}
}

// TestDeterminismUnderChaos asserts per-seed reproducibility of
// chaos-scheduled sweeps: with Engine.Chaos perturbing same-time event
// order, the same chaos seeds reproduce byte-identically (across worker
// counts too), while being a genuinely different schedule than the
// FIFO-ordered run.
func TestDeterminismUnderChaos(t *testing.T) {
	var golden []byte
	for _, parallel := range []int{1, 8} {
		for rep := 0; rep < 2; rep++ {
			sum, err := Run(context.Background(), detGrid(true), Options{Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			b := marshalResults(t, sum)
			if golden == nil {
				golden = b
				continue
			}
			if !bytes.Equal(golden, b) {
				t.Fatalf("chaos sweep not reproducible (parallel=%d rep=%d)", parallel, rep)
			}
		}
	}

	// A different chaos base seed must still yield a self-consistent sweep
	// (the protocol executes; only event tie-breaking differs).
	pts := Grid(GridConfig{
		Ks: []int{8}, Schemes: grouping.AllSchemes, Ds: []int{1, 4, 8},
		Trials: 3, BaseSeed: 1996, Chaos: true,
	})
	for i := range pts {
		pts[i].ChaosSeed += 12345
	}
	sum, err := Run(context.Background(), pts, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sum.Results {
		if r.Measures.Completed != r.Point.Trials {
			t.Fatalf("chaos point %d incomplete: %+v", r.Point.Index, r.Measures)
		}
		if r.Measures.Latency.Mean() <= 0 {
			t.Fatalf("chaos point %d has non-positive latency", r.Point.Index)
		}
	}
}
