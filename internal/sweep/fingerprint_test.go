package sweep

import (
	"context"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/coherence"
	"repro/internal/faults"
	"repro/internal/grouping"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func basePoint() Point {
	return Point{
		Index: 3, K: 8, Scheme: grouping.BR, D: 16,
		Pattern: workload.RandomPlacement, Trials: 10, Seed: 42,
	}
}

func TestFingerprintStableAndContentAddressed(t *testing.T) {
	p := basePoint()
	fp := p.Fingerprint()
	if len(fp) != 64 || strings.Trim(fp, "0123456789abcdef") != "" {
		t.Fatalf("fingerprint %q is not lowercase hex sha256", fp)
	}
	if p.Fingerprint() != fp {
		t.Fatal("fingerprint not stable across calls")
	}

	// Index is grid position, not content.
	q := p
	q.Index = 99
	if q.Fingerprint() != fp {
		t.Error("Index changed the fingerprint; it must not")
	}
	// Tune is excluded (unserializable), like the checkpoint fingerprint.
	q = p
	q.Tune = func(*coherence.Params) {}
	if q.Fingerprint() != fp {
		t.Error("Tune changed the fingerprint; it must not")
	}

	// Every content field must change the hash.
	mutations := map[string]func(*Point){
		"K":         func(p *Point) { p.K = 16 },
		"Scheme":    func(p *Point) { p.Scheme = grouping.UIUA },
		"D":         func(p *Point) { p.D = 8 },
		"Pattern":   func(p *Point) { p.Pattern = workload.RowPlacement },
		"Trials":    func(p *Point) { p.Trials = 20 },
		"Seed":      func(p *Point) { p.Seed = 43 },
		"ChaosSeed": func(p *Point) { p.ChaosSeed = 7 },
		"Faults":    func(p *Point) { p.Faults = &faults.Config{DropRate: 0.1, Seed: 9} },
	}
	for name, mutate := range mutations {
		q := basePoint()
		mutate(&q)
		if q.Fingerprint() == fp {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}
}

// TestFingerprintSeedPrecision pins that full 64-bit seeds survive
// canonicalization: two seeds that collide under a float64 round-trip
// (they differ only below float64's 53-bit mantissa) must hash apart.
func TestFingerprintSeedPrecision(t *testing.T) {
	a, b := basePoint(), basePoint()
	a.Seed = 1 << 60
	b.Seed = 1<<60 + 1
	if float64(a.Seed) != float64(b.Seed) {
		t.Fatal("test premise broken: seeds should collide as float64")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("seeds differing below float64 precision collided; canonical JSON must keep numbers verbatim")
	}
}

func TestCanonicalJSONSortsNestedKeys(t *testing.T) {
	in := []byte(`{"b":1,"a":{"z":[{"y":2,"x":18446744073709551615}],"w":3}}`)
	got, err := canonicalJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a":{"w":3,"z":[{"x":18446744073709551615,"y":2}]},"b":1}`
	if string(got) != want {
		t.Fatalf("canonicalJSON = %s, want %s", got, want)
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr string
	}{
		{"zero value", Options{}, ""},
		{"negative parallel", Options{Parallel: -2}, "Parallel"},
		{"negative timeout", Options{PointTimeout: -time.Second}, "PointTimeout"},
		{"resume without checkpoint", Options{Resume: true}, "CheckpointPath"},
		{"resume with checkpoint", Options{Resume: true, CheckpointPath: "x.json"}, ""},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want mention of %s", tc.name, err, tc.wantErr)
		}
	}
}

func TestRunRejectsInvalidOptions(t *testing.T) {
	pts := []Point{{Index: 0, K: 4, D: 2, Trials: 1, Seed: 1}}
	_, err := Run(context.Background(), pts, Options{PointTimeout: -1})
	if err == nil || !strings.Contains(err.Error(), "PointTimeout") {
		t.Fatalf("Run accepted a negative PointTimeout: %v", err)
	}
}

// TestResumeDedupsQuarantinedByFingerprint builds a grid where two
// positions name the identical computation, runs it with a runner that
// completes the first copy but quarantines the second, then resumes: the
// quarantined position must be satisfied from its completed twin's result
// instead of re-running.
func TestResumeDedupsQuarantinedByFingerprint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	// Same content at indices 0 and 2 (same explicit seed); index 1 differs.
	pts := []Point{
		{Index: 0, K: 4, Scheme: grouping.UIUA, D: 2, Trials: 2, Seed: 5},
		{Index: 1, K: 4, Scheme: grouping.BR, D: 2, Trials: 2, Seed: 6},
		{Index: 2, K: 4, Scheme: grouping.UIUA, D: 2, Trials: 2, Seed: 5},
	}
	if pts[0].Fingerprint() != pts[2].Fingerprint() {
		t.Fatal("test premise broken: twin points must share a fingerprint")
	}
	measures := Measures{HomeMsgs: 7.5, Completed: 2}
	first, err := Run(context.Background(), pts, Options{
		Parallel:       1,
		PointTimeout:   time.Hour,
		CheckpointPath: ckpt,
		RunPoint: func(ctx context.Context, p Point) (Measures, *metrics.Collector) {
			if p.Index == 2 {
				// Never completes: times out on the first try and on the
				// doubled-budget retry, so the point quarantines.
				return Measures{Completed: 0}, nil
			}
			return measures, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Quarantined != 1 {
		t.Fatalf("setup sweep quarantined %d points, want 1", first.Quarantined)
	}

	var reran atomic.Int64
	second, err := Run(context.Background(), pts, Options{
		Parallel:       1,
		CheckpointPath: ckpt,
		Resume:         true,
		RunPoint: func(ctx context.Context, p Point) (Measures, *metrics.Collector) {
			reran.Add(1)
			return measures, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := reran.Load(); n != 0 {
		t.Errorf("resume re-ran %d points; the quarantined twin should have been deduped", n)
	}
	if second.Resumed != 3 {
		t.Errorf("resumed %d points, want 3", second.Resumed)
	}
	r2 := second.Results[2]
	if !r2.Resumed || r2.Partial || r2.Quarantined {
		t.Errorf("quarantined twin result = %+v; want clean resumed result", r2)
	}
	if r2.Measures.HomeMsgs != measures.HomeMsgs || r2.Measures.Completed != measures.Completed {
		t.Errorf("quarantined twin measures = %+v, want the completed twin's %+v", r2.Measures, measures)
	}
}
