package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// Fingerprint returns the canonical content hash of the computation a point
// selects: a hex SHA-256 over the sorted-key JSON form of every field
// except Index (the point's grid position, which does not influence the
// result — the seed is already derived by the time a point exists) and Tune
// (functions cannot be serialized; callers mixing Tune behaviors must not
// share fingerprinted caches, the same caveat the checkpoint fingerprint
// carries).
//
// Because identical (config, seed) points are deterministic, a fingerprint
// names an immutable value: two points with equal fingerprints produce
// byte-identical Measures. That is what makes it safe as the coalescing and
// content-addressed-cache key of the serving layer (internal/service) and
// as the dedup key for quarantined checkpoint entries.
//
// The hash is computed over canonical JSON — object keys sorted at every
// nesting depth, numbers kept verbatim (no float64 round-trip, so full
// uint64 seeds never collide) — which makes it independent of struct field
// order and Go map iteration order.
func (p Point) Fingerprint() string {
	q := p
	q.Index = 0
	q.Tune = nil
	b, err := json.Marshal(q)
	if err != nil {
		panic(fmt.Sprintf("sweep: point not serializable: %v", err))
	}
	canon, err := canonicalJSON(b)
	if err != nil {
		panic(fmt.Sprintf("sweep: point not canonicalizable: %v", err))
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:])
}

// canonicalJSON re-encodes a JSON document with object keys sorted at every
// depth. Numbers are decoded as json.Number so their exact source digits
// survive the round trip.
func canonicalJSON(in []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(in))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case json.Number:
		buf.WriteString(x.String())
	default:
		b, err := json.Marshal(x)
		if err != nil {
			return err
		}
		buf.Write(b)
	}
	return nil
}
