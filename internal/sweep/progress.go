package sweep

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a snapshot of a running sweep, delivered to
// Options.OnProgress after every completed point.
type Progress struct {
	// Done and Total count points (Done includes resumed ones).
	Done, Total int
	// Partial counts points stopped early by timeout or cancellation.
	Partial int
	// Resumed counts points satisfied from the checkpoint.
	Resumed int
	// Quarantined counts points that timed out even on their doubled-budget
	// retry (a subset of Partial).
	Quarantined int
	// Last is the most recently completed point.
	Last Point
	// Elapsed is wall-clock time since Run started.
	Elapsed time.Duration
	// PointsPerSec is the throughput over freshly run points.
	PointsPerSec float64
}

// String renders a one-line status suitable for a terminal.
func (p Progress) String() string {
	s := fmt.Sprintf("%d/%d points", p.Done, p.Total)
	if p.Resumed > 0 {
		s += fmt.Sprintf(" (%d resumed)", p.Resumed)
	}
	if p.Partial > 0 {
		s += fmt.Sprintf(" (%d partial)", p.Partial)
	}
	if p.Quarantined > 0 {
		s += fmt.Sprintf(" (%d quarantined)", p.Quarantined)
	}
	if p.PointsPerSec > 0 && p.PointsPerSec < 1e9 {
		s += fmt.Sprintf(", %.1f points/s", p.PointsPerSec)
		if remaining := p.Total - p.Done; remaining > 0 {
			eta := time.Duration(float64(remaining)/p.PointsPerSec*1e9) * time.Nanosecond
			s += fmt.Sprintf(", ~%s left", eta.Round(time.Second))
		}
	}
	s += fmt.Sprintf(" [last: %s k=%d d=%d]", p.Last.Scheme, p.Last.K, p.Last.D)
	return s
}

// Reporter returns an OnProgress callback that writes a status line to w,
// rate-limited to one line per interval (the final update always prints).
// Point results on stdout stay byte-identical whether or not a reporter is
// attached as long as w is a different stream (conventionally stderr).
func Reporter(w io.Writer, interval time.Duration) func(Progress) {
	var mu sync.Mutex
	var last time.Time
	return func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now() //simcheck:allow determinism -- operator-facing progress throttle, not simulation state
		if p.Done < p.Total && now.Sub(last) < interval {
			return
		}
		last = now
		fmt.Fprintf(w, "sweep: %s\n", p)
	}
}
