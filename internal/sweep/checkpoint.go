package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// checkpointVersion is bumped whenever the on-disk format changes
// incompatibly.
const checkpointVersion = 1

// savedResult is one completed point as stored on disk. Partial results are
// stored for inspection but never resumed from: a partial point re-runs.
// Quarantined marks a partial point that also blew its doubled-budget retry.
// Fingerprint is the point's canonical content hash (Point.Fingerprint),
// recorded so resume can recognize two grid positions that name the same
// computation; checkpoints written before the field existed load fine, they
// just dedup nothing.
type savedResult struct {
	Index       int      `json:"index"`
	Measures    Measures `json:"measures"`
	Partial     bool     `json:"partial,omitempty"`
	Quarantined bool     `json:"quarantined,omitempty"`
	Fingerprint string   `json:"fingerprint,omitempty"`
}

// checkpointFile is the JSON document written to Options.CheckpointPath.
type checkpointFile struct {
	Version int `json:"version"`
	// Fingerprint hashes the point grid (serialized without Tune); resume
	// refuses a file recorded for a different grid.
	Fingerprint uint64        `json:"fingerprint"`
	Total       int           `json:"total"`
	Done        []savedResult `json:"done"`
}

// checkpoint tracks completed points and persists them atomically
// (write-temp-then-rename) after each completion. All methods are called
// from the single aggregation goroutine, so no locking is needed.
type checkpoint struct {
	path  string
	fp    uint64
	total int
	done  map[int]savedResult
}

func newCheckpoint(path string, points []Point) *checkpoint {
	return &checkpoint{
		path:  path,
		fp:    fingerprint(points),
		total: len(points),
		done:  make(map[int]savedResult),
	}
}

// fingerprint hashes the JSON form of the grid. Tune functions are excluded
// by their json:"-" tag; everything that selects the computation (scheme,
// mesh, sharers, pattern, trials, seeds, indices) is included.
func fingerprint(points []Point) uint64 {
	b, err := json.Marshal(points)
	if err != nil {
		panic(fmt.Sprintf("sweep: points not serializable: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// load reads the checkpoint file and returns the completed (non-partial)
// results keyed by point index. A missing file is a fresh start, not an
// error. A file that does not parse — truncated by a crash or a full disk,
// since only the atomic-rename writer is supposed to touch it — is also
// recoverable: load warns and restarts every point, which is always safe
// because a checkpoint is a pure cache of deterministic results. A file for
// a different grid or format version, by contrast, is an error: it parsed
// fine and says the operator pointed a resume at the wrong sweep.
func (c *checkpoint) load() (map[int]savedResult, error) {
	data, err := os.ReadFile(c.path)
	if errors.Is(err, fs.ErrNotExist) {
		return map[int]savedResult{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: read checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: checkpoint %s is corrupt (%v); restarting all points\n", c.path, err)
		return map[int]savedResult{}, nil
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("sweep: checkpoint %s has version %d, want %d", c.path, f.Version, checkpointVersion)
	}
	if f.Fingerprint != c.fp || f.Total != c.total {
		return nil, fmt.Errorf("sweep: checkpoint %s was recorded for a different sweep (fingerprint %x/%d points, want %x/%d)",
			c.path, f.Fingerprint, f.Total, c.fp, c.total)
	}
	out := make(map[int]savedResult, len(f.Done))
	// byFP indexes the complete results by content fingerprint so
	// quarantined entries can be satisfied from an identical computation
	// recorded elsewhere in the grid.
	byFP := make(map[string]savedResult)
	for _, sr := range f.Done {
		if sr.Index < 0 || sr.Index >= c.total {
			return nil, fmt.Errorf("sweep: checkpoint %s has out-of-range point index %d", c.path, sr.Index)
		}
		if !sr.Partial {
			out[sr.Index] = sr
			if sr.Fingerprint != "" {
				byFP[sr.Fingerprint] = sr
			}
		}
	}
	// Quarantine dedup: a quarantined entry re-runs on resume by design —
	// unless a complete entry with the same fingerprint exists, in which
	// case the quarantined position is the same deterministic computation
	// and its result is already known. This covers grids with repeated
	// content (clamped cells, hand-built point lists) and checkpoints
	// written mid-retry, where one copy of a point finished while its twin
	// was still stuck in the retry path when the sweep died.
	for _, sr := range f.Done {
		if !sr.Partial || !sr.Quarantined || sr.Fingerprint == "" {
			continue
		}
		if twin, ok := byFP[sr.Fingerprint]; ok {
			out[sr.Index] = savedResult{
				Index:       sr.Index,
				Measures:    twin.Measures,
				Fingerprint: sr.Fingerprint,
			}
		}
	}
	return out, nil
}

// record registers a completed result for the next save.
func (c *checkpoint) record(r Result) {
	c.done[r.Point.Index] = savedResult{
		Index:       r.Point.Index,
		Measures:    r.Measures,
		Partial:     r.Partial,
		Quarantined: r.Quarantined,
		Fingerprint: r.Point.Fingerprint(),
	}
}

// save writes the checkpoint atomically via AtomicWriteJSON. A crash
// mid-save leaves the previous checkpoint intact.
func (c *checkpoint) save() error {
	f := checkpointFile{
		Version:     checkpointVersion,
		Fingerprint: c.fp,
		Total:       c.total,
	}
	for _, sr := range c.done {
		f.Done = append(f.Done, sr)
	}
	sort.Slice(f.Done, func(i, j int) bool { return f.Done[i].Index < f.Done[j].Index })
	return AtomicWriteJSON(c.path, f)
}

// AtomicWriteJSON marshals v with indentation and writes it to path
// atomically: marshal, write a temp file in the same directory, rename over
// the target. A crash mid-write leaves the previous file intact. It is the
// checkpoint codec's write path, exported so every other durable JSON
// artifact in the repository (the serving layer's on-disk result store and
// job journal) persists with the same crash-safety discipline.
func AtomicWriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
