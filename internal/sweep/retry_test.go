package sweep

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestPointTimeoutRetriesOnce: a point that blows its budget on the first
// attempt but completes on the doubled-budget retry ends up complete (not
// partial), marked Retried, and the sweep stays clean.
func TestPointTimeoutRetriesOnce(t *testing.T) {
	pts := testPoints(3)
	var attempts atomic.Int64
	sum, err := Run(context.Background(), pts, Options{
		Parallel:     1,
		PointTimeout: 20 * time.Millisecond,
		RunPoint: func(ctx context.Context, p Point) (Measures, *metrics.Collector) {
			if p.Index == 1 && attempts.Add(1) == 1 {
				// First attempt: transiently slow, observes its deadline.
				<-ctx.Done()
				return Measures{Completed: 1}, nil
			}
			return Measures{Completed: p.Trials}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := sum.Results[1]
	if !r.Retried || r.Partial || r.Quarantined {
		t.Fatalf("retry outcome wrong: %+v", r)
	}
	if r.Measures.Completed != pts[1].Trials {
		t.Fatalf("retry result not used: %+v", r.Measures)
	}
	if sum.Partial != 0 || sum.Quarantined != 0 || sum.Completed != 3 {
		t.Fatalf("summary counts wrong: %+v", sum)
	}
	if sum.Results[0].Retried || sum.Results[2].Retried {
		t.Fatal("healthy points were retried")
	}
}

// TestPointTimeoutQuarantines: a point that blows the retry budget too is
// quarantined — its partial result kept, the flag set, the summary counting
// it — and a checkpoint records it distinctly without treating it as
// resumable.
func TestPointTimeoutQuarantines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	pts := testPoints(3)
	var slowRuns atomic.Int64
	opts := Options{
		Parallel:       1,
		PointTimeout:   10 * time.Millisecond,
		CheckpointPath: path,
		RunPoint: func(ctx context.Context, p Point) (Measures, *metrics.Collector) {
			if p.Index == 1 {
				// Pathologically slow every time.
				slowRuns.Add(1)
				<-ctx.Done()
				return Measures{Completed: 1}, nil
			}
			return Measures{Completed: p.Trials}, nil
		},
	}
	sum, err := Run(context.Background(), pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := sum.Results[1]
	if !r.Retried || !r.Partial || !r.Quarantined {
		t.Fatalf("quarantine outcome wrong: %+v", r)
	}
	if slowRuns.Load() != 2 {
		t.Fatalf("slow point ran %d times, want exactly 2 (original + one retry)", slowRuns.Load())
	}
	if sum.Quarantined != 1 || sum.Partial != 1 {
		t.Fatalf("summary counts wrong: quarantined=%d partial=%d", sum.Quarantined, sum.Partial)
	}

	// The checkpoint must mention the quarantined point (flagged) but a
	// resumed run must re-attempt it rather than trust its partial result.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"quarantined": true`) {
		t.Fatalf("checkpoint does not flag the quarantined point:\n%s", data)
	}
	opts.Resume = true
	sum2, err := Run(context.Background(), pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if slowRuns.Load() != 4 {
		t.Fatalf("resume did not re-attempt the quarantined point (slow runs %d)", slowRuns.Load())
	}
	if sum2.Resumed != 2 {
		t.Fatalf("resume did not serve the healthy points from the checkpoint (resumed %d)", sum2.Resumed)
	}
}

// TestQuarantineRendersInProgress: the operator-facing status line must call
// out quarantined points.
func TestQuarantineRendersInProgress(t *testing.T) {
	p := Progress{Done: 4, Total: 9, Partial: 2, Quarantined: 1}
	if s := p.String(); !strings.Contains(s, "1 quarantined") {
		t.Fatalf("progress line omits quarantine: %q", s)
	}
	if s := (Progress{Done: 1, Total: 2}).String(); strings.Contains(s, "quarantined") {
		t.Fatalf("clean progress line mentions quarantine: %q", s)
	}
}

// TestCheckpointCorruptionRecovers: a truncated checkpoint file (crash or
// full disk mid-write) must not kill a resume — the sweep warns, discards
// the file, and re-runs every point.
func TestCheckpointCorruptionRecovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	pts := testPoints(4)

	// Produce a valid checkpoint, then truncate it mid-document.
	if _, err := Run(context.Background(), pts, Options{
		CheckpointPath: path,
		RunPoint: func(ctx context.Context, p Point) (Measures, *metrics.Collector) {
			return Measures{Completed: p.Trials}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	sum, err := Run(context.Background(), pts, Options{
		CheckpointPath: path, Resume: true,
		RunPoint: func(ctx context.Context, p Point) (Measures, *metrics.Collector) {
			calls.Add(1)
			return Measures{Completed: p.Trials}, nil
		},
	})
	if err != nil {
		t.Fatalf("corrupt checkpoint failed the sweep: %v", err)
	}
	if sum.Resumed != 0 || calls.Load() != int64(len(pts)) {
		t.Fatalf("corrupt checkpoint partially trusted: resumed=%d calls=%d", sum.Resumed, calls.Load())
	}
	// The rerun must have rewritten a healthy checkpoint.
	sum2, err := Run(context.Background(), pts, Options{
		CheckpointPath: path, Resume: true,
		RunPoint: func(ctx context.Context, p Point) (Measures, *metrics.Collector) {
			t.Fatalf("point %d re-ran despite repaired checkpoint", p.Index)
			return Measures{}, nil
		},
	})
	if err != nil || sum2.Resumed != len(pts) {
		t.Fatalf("repaired checkpoint not usable: err=%v resumed=%d", err, sum2.Resumed)
	}

	// Garbage that is not even JSON recovers the same way.
	if err := os.WriteFile(path, []byte("not json at all{{{"), 0o644); err != nil {
		t.Fatal(err)
	}
	sum3, err := Run(context.Background(), pts, Options{
		CheckpointPath: path, Resume: true,
		RunPoint: func(ctx context.Context, p Point) (Measures, *metrics.Collector) {
			return Measures{Completed: p.Trials}, nil
		},
	})
	if err != nil || sum3.Resumed != 0 || sum3.Completed != len(pts) {
		t.Fatalf("garbage checkpoint not recovered: err=%v %+v", err, sum3)
	}
}
