// Package directory implements the fully-mapped directory of the paper's
// DSM: one entry per memory block holding a protocol state and a presence
// bit per node [44]. Blocks are distributed across home nodes by
// interleaving block numbers.
package directory

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/topology"
)

// BlockID identifies a memory block (cache-line-sized, aligned).
type BlockID uint64

// State is the directory state of a block.
type State int

const (
	// Uncached: no node holds a copy.
	Uncached State = iota
	// Shared: one or more nodes hold read-only copies (presence bits set).
	Shared
	// Exclusive: exactly one node holds a writable (dirty) copy.
	Exclusive
	// Waiting: an invalidation or ownership transfer is in flight; new
	// requests for the block must be deferred.
	Waiting
)

var stateNames = [...]string{"uncached", "shared", "exclusive", "waiting"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Presence is a bit vector of sharer nodes. Node IDs index bits.
type Presence []uint64

// NewPresence returns an empty presence vector sized for n nodes.
func NewPresence(n int) Presence {
	return make(Presence, (n+63)/64)
}

// Set marks node as present.
func (p Presence) Set(n topology.NodeID) { p[n/64] |= 1 << (uint(n) % 64) }

// Clear removes node.
func (p Presence) Clear(n topology.NodeID) { p[n/64] &^= 1 << (uint(n) % 64) }

// Has reports whether node is present.
func (p Presence) Has(n topology.NodeID) bool { return p[n/64]&(1<<(uint(n)%64)) != 0 }

// Count returns the number of present nodes.
func (p Presence) Count() int {
	total := 0
	for _, w := range p {
		total += bits.OnesCount64(w)
	}
	return total
}

// Nodes returns the present nodes in ascending ID order.
func (p Presence) Nodes() []topology.NodeID {
	var out []topology.NodeID
	for wi, w := range p {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, topology.NodeID(wi*64+b))
			w &^= 1 << uint(b)
		}
	}
	return out
}

// Clone returns an independent copy.
func (p Presence) Clone() Presence {
	q := make(Presence, len(p))
	copy(q, p)
	return q
}

// Reset clears every bit.
func (p Presence) Reset() {
	for i := range p {
		p[i] = 0
	}
}

// Entry is one directory entry.
type Entry struct {
	State State
	// Sharers is valid in Shared state (and transiently in Waiting).
	Sharers Presence
	// Owner is valid in Exclusive state.
	Owner topology.NodeID
	// Overflow is set by limited-pointer directories (Dir_i-B) when more
	// sharers exist than the entry can track individually; an invalidation
	// must then be broadcast to every node [16, 29]. Cleared when the
	// entry returns to Uncached or Exclusive.
	Overflow bool
	// CoarseMode / Coarse implement the coarse-vector fallback (Dir_i-CV,
	// as in DASH): past the pointer limit the entry tracks node *regions*
	// instead of nodes — Coarse holds one bit per region. Invalidations
	// then target every node of every marked region, a strict improvement
	// on broadcast for localized sharing.
	CoarseMode bool
	Coarse     Presence
	// OwnGen counts exclusive-ownership grants for this block. The grant
	// reply carries it and the owner's eventual dirty writeback echoes it,
	// letting the home tell a current writeback from one that raced in the
	// unordered network while the same node re-acquired ownership (the
	// stale writeback must not clear the directory entry).
	OwnGen uint64
}

// Directory is one node's slice of the distributed full-map directory: it
// holds the entries for every block whose home is this node. Entries are
// created lazily in the Uncached state.
type Directory struct {
	nodes   int
	entries map[BlockID]*Entry
}

// New returns an empty directory for a machine with n nodes.
func New(n int) *Directory {
	return &Directory{nodes: n, entries: make(map[BlockID]*Entry)}
}

// Lookup returns the entry for block, creating it Uncached on first touch.
func (d *Directory) Lookup(block BlockID) *Entry {
	e, ok := d.entries[block]
	if !ok {
		e = &Entry{State: Uncached, Sharers: NewPresence(d.nodes)}
		d.entries[block] = e
	}
	return e
}

// Blocks returns the number of entries materialized so far.
func (d *Directory) Blocks() int { return len(d.entries) }

// ForEach visits every materialized entry in ascending BlockID order.
// The order is fixed so that anything built from a traversal — invariant
// failure reports, dumps — is deterministic rather than dependent on Go's
// randomized map iteration.
func (d *Directory) ForEach(fn func(BlockID, *Entry)) {
	ids := make([]BlockID, 0, len(d.entries))
	for b := range d.entries {
		ids = append(ids, b)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, b := range ids {
		fn(b, d.entries[b])
	}
}

// HomeMap distributes blocks across nodes by low-order interleaving, the
// conventional DSM placement.
type HomeMap struct {
	nodes int
}

// NewHomeMap returns a home map for n nodes.
func NewHomeMap(n int) *HomeMap {
	if n <= 0 {
		panic("directory: HomeMap needs at least one node")
	}
	return &HomeMap{nodes: n}
}

// Home returns the home node of a block.
func (h *HomeMap) Home(block BlockID) topology.NodeID {
	return topology.NodeID(uint64(block) % uint64(h.nodes))
}
