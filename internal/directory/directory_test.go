package directory

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestPresenceSetClearHas(t *testing.T) {
	p := NewPresence(128)
	p.Set(0)
	p.Set(63)
	p.Set(64)
	p.Set(127)
	for _, n := range []topology.NodeID{0, 63, 64, 127} {
		if !p.Has(n) {
			t.Fatalf("Has(%d) = false after Set", n)
		}
	}
	if p.Has(1) || p.Has(65) {
		t.Fatal("Has true for unset nodes")
	}
	p.Clear(63)
	if p.Has(63) {
		t.Fatal("Has(63) after Clear")
	}
	if p.Count() != 3 {
		t.Fatalf("Count = %d, want 3", p.Count())
	}
}

func TestPresenceNodesSorted(t *testing.T) {
	p := NewPresence(256)
	for _, n := range []topology.NodeID{200, 3, 77, 64, 65} {
		p.Set(n)
	}
	nodes := p.Nodes()
	want := []topology.NodeID{3, 64, 65, 77, 200}
	if len(nodes) != len(want) {
		t.Fatalf("Nodes = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", nodes, want)
		}
	}
}

func TestPresenceCloneIndependent(t *testing.T) {
	p := NewPresence(64)
	p.Set(5)
	q := p.Clone()
	q.Set(6)
	if p.Has(6) {
		t.Fatal("Clone aliased the original")
	}
	if !q.Has(5) {
		t.Fatal("Clone lost bits")
	}
}

func TestPresenceReset(t *testing.T) {
	p := NewPresence(64)
	p.Set(1)
	p.Set(60)
	p.Reset()
	if p.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestPresenceCountMatchesNodesProperty(t *testing.T) {
	prop := func(ids []uint8) bool {
		p := NewPresence(256)
		uniq := map[topology.NodeID]bool{}
		for _, id := range ids {
			n := topology.NodeID(id)
			p.Set(n)
			uniq[n] = true
		}
		return p.Count() == len(uniq) && len(p.Nodes()) == len(uniq)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPresenceSetClearInverseProperty(t *testing.T) {
	prop := func(id uint8, others []uint8) bool {
		p := NewPresence(256)
		for _, o := range others {
			p.Set(topology.NodeID(o))
		}
		before := p.Has(topology.NodeID(id))
		p.Set(topology.NodeID(id))
		p.Clear(topology.NodeID(id))
		if p.Has(topology.NodeID(id)) {
			return false
		}
		_ = before
		// Other bits unaffected.
		for _, o := range others {
			if topology.NodeID(o) != topology.NodeID(id) && !p.Has(topology.NodeID(o)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryLazyLookup(t *testing.T) {
	d := New(64)
	e := d.Lookup(42)
	if e.State != Uncached {
		t.Fatalf("fresh entry state = %v, want uncached", e.State)
	}
	e.State = Shared
	e.Sharers.Set(3)
	again := d.Lookup(42)
	if again.State != Shared || !again.Sharers.Has(3) {
		t.Fatal("Lookup did not return the same entry")
	}
	if d.Blocks() != 1 {
		t.Fatalf("Blocks = %d, want 1", d.Blocks())
	}
}

func TestHomeMapInterleaves(t *testing.T) {
	h := NewHomeMap(16)
	if h.Home(0) != 0 || h.Home(1) != 1 || h.Home(16) != 0 || h.Home(17) != 1 {
		t.Fatal("home interleaving wrong")
	}
}

func TestHomeMapCoversAllNodesProperty(t *testing.T) {
	h := NewHomeMap(16)
	prop := func(b uint32) bool {
		home := h.Home(BlockID(b))
		return home >= 0 && int(home) < 16
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHomeMapZeroNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHomeMap(0) did not panic")
		}
	}()
	NewHomeMap(0)
}

func TestStateStrings(t *testing.T) {
	if Uncached.String() != "uncached" || Waiting.String() != "waiting" {
		t.Error("state names wrong")
	}
}
