package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// loadFixture type-checks one testdata package. Fixture import paths live
// under the synthetic "fixture/" module so the exhaustive analyzer's default
// module-prefix derivation treats their enums as module-declared.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir("testdata/src/"+name, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// fixtureAnalyzers is the production rule set with the sim-core gate opened
// so the fixtures (which are not repro/internal packages) fall in scope.
func fixtureAnalyzers() []Analyzer {
	anyPackage := func(string) bool { return true }
	return []Analyzer{
		&Determinism{SimCore: anyPackage},
		&MapOrder{},
		&Exhaustive{},
		&NoGoroutine{SimCore: anyPackage},
	}
}

func diagLocs(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprintf("%s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Rule)
	}
	return out
}

// TestFixtureDiagnostics pins the exact file:line: rule of every finding on
// the violating fixtures, and that the clean and allow fixtures produce none.
// Running the full rule set over each fixture also guards against cross-rule
// false positives.
func TestFixtureDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		want []string
	}{
		{"clean", nil},
		{"allow", nil},
		{"determinism_bad", []string{
			"testdata/src/determinism_bad/bad.go:6: determinism",
			"testdata/src/determinism_bad/bad.go:13: determinism",
			"testdata/src/determinism_bad/bad.go:15: determinism",
			"testdata/src/determinism_bad/bad.go:17: determinism",
		}},
		{"maporder_bad", []string{
			"testdata/src/maporder_bad/bad.go:9: maporder",
			"testdata/src/maporder_bad/bad.go:16: maporder",
		}},
		{"exhaustive_bad", []string{
			"testdata/src/exhaustive_bad/bad.go:14: exhaustive",
			"testdata/src/exhaustive_bad/bad.go:24: exhaustive",
		}},
		{"nogoroutine_bad", []string{
			"testdata/src/nogoroutine_bad/bad.go:5: nogoroutine",
			"testdata/src/nogoroutine_bad/bad.go:9: nogoroutine",
			"testdata/src/nogoroutine_bad/bad.go:12: nogoroutine",
			"testdata/src/nogoroutine_bad/bad.go:14: nogoroutine",
			"testdata/src/nogoroutine_bad/bad.go:20: nogoroutine",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadFixture(t, tc.name)
			got := diagLocs(Run([]*Package{pkg}, fixtureAnalyzers()))
			if len(got) != len(tc.want) {
				t.Fatalf("got %d findings %v, want %d %v", len(got), got, len(tc.want), tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("finding %d = %q, want %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestDiagnosticMessages spot-checks the message text of one finding per
// rule, including the canonical String rendering.
func TestDiagnosticMessages(t *testing.T) {
	checks := []struct {
		fixture, substr string
	}{
		{"determinism_bad", "import of math/rand"},
		{"determinism_bad", "time.Now is nondeterministic"},
		{"maporder_bad", "ordered output (append); sort the keys first"},
		{"exhaustive_bad", "switch over state misses done and has no panicking default"},
		{"exhaustive_bad", "switch over state misses busy, done and its default does not panic"},
		{"nogoroutine_bad", "go statement in sim-core package"},
	}
	for _, c := range checks {
		pkg := loadFixture(t, c.fixture)
		diags := Run([]*Package{pkg}, fixtureAnalyzers())
		found := false
		for _, d := range diags {
			s := d.String()
			if strings.Contains(s, c.substr) {
				found = true
				if !strings.Contains(s, ": ") || !strings.HasPrefix(s, "testdata/src/") {
					t.Errorf("diagnostic %q not in file:line: rule: message form", s)
				}
			}
		}
		if !found {
			t.Errorf("%s: no finding containing %q in %v", c.fixture, c.substr, diags)
		}
	}
}

// TestAllowWithoutComment establishes the allow fixture's suppressions are
// load-bearing: the same package analyzed without allow filtering (calling
// the analyzer directly rather than through Run) reports both wall-clock
// reads.
func TestAllowWithoutComment(t *testing.T) {
	pkg := loadFixture(t, "allow")
	det := &Determinism{SimCore: func(string) bool { return true }}
	diags := det.Check(pkg)
	if len(diags) != 2 {
		t.Fatalf("raw determinism check on allow fixture = %d findings %v, want 2", len(diags), diags)
	}
}

// TestModuleClean runs the production configuration over the whole module:
// the tree the repository ships must carry zero findings, which is exactly
// what `go run ./cmd/simcheck ./...` enforces in CI.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("LoadModule found only %d packages", len(pkgs))
	}
	for _, d := range Run(pkgs, DefaultAnalyzers()) {
		t.Errorf("unexpected finding: %s", d)
	}
}
