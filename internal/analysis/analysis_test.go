package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// loadFixture type-checks one testdata package. Fixture import paths live
// under the synthetic "fixture/" module so the exhaustive analyzer's default
// module-prefix derivation treats their enums as module-declared.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir("testdata/src/"+name, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// fixtureAnalyzers is the production rule set with the sim-core gate opened
// so the fixtures (which are not repro/internal packages) fall in scope.
func fixtureAnalyzers() []Analyzer {
	anyPackage := func(string) bool { return true }
	return []Analyzer{
		&Determinism{SimCore: anyPackage},
		&MapOrder{},
		&Exhaustive{},
		&NoGoroutine{SimCore: anyPackage},
		&Lifetime{},
		&NoAlloc{},
	}
}

func diagLocs(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprintf("%s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Rule)
	}
	return out
}

// TestFixtureDiagnostics pins the exact file:line: rule of every finding on
// the violating fixtures, and that the clean and allow fixtures produce none.
// Running the full rule set over each fixture also guards against cross-rule
// false positives.
func TestFixtureDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		want []string
	}{
		{"clean", nil},
		{"allow", nil},
		{"allowfile", nil},
		{"allowfile_bad", []string{
			"testdata/src/allowfile_bad/allowfile_bad.go:11: determinism",
		}},
		{"determinism_bad", []string{
			"testdata/src/determinism_bad/bad.go:6: determinism",
			"testdata/src/determinism_bad/bad.go:13: determinism",
			"testdata/src/determinism_bad/bad.go:15: determinism",
			"testdata/src/determinism_bad/bad.go:17: determinism",
		}},
		{"maporder_bad", []string{
			"testdata/src/maporder_bad/bad.go:9: maporder",
			"testdata/src/maporder_bad/bad.go:16: maporder",
		}},
		{"exhaustive_bad", []string{
			"testdata/src/exhaustive_bad/bad.go:14: exhaustive",
			"testdata/src/exhaustive_bad/bad.go:24: exhaustive",
		}},
		{"lifetime_allow", nil},
		{"noalloc_allow", nil},
		{"lifetime_bad", []string{
			"testdata/src/lifetime_bad/bad.go:40: lifetime", // use-after-release
			"testdata/src/lifetime_bad/bad.go:46: lifetime", // double-release
			"testdata/src/lifetime_bad/bad.go:52: lifetime", // release inside loop
			"testdata/src/lifetime_bad/bad.go:61: lifetime", // use after may-release
			"testdata/src/lifetime_bad/bad.go:66: lifetime", // borrow escapes to field
			"testdata/src/lifetime_bad/bad.go:70: lifetime", // borrow escapes to global
			"testdata/src/lifetime_bad/bad.go:75: lifetime", // borrow captured by closure
		}},
		{"noalloc_bad", []string{
			"testdata/src/noalloc_bad/bad.go:18: noalloc", // capturing closure
			"testdata/src/noalloc_bad/bad.go:24: noalloc", // boxed return
			"testdata/src/noalloc_bad/bad.go:29: noalloc", // boxed assignment
			"testdata/src/noalloc_bad/bad.go:34: noalloc", // explicit interface conversion
			"testdata/src/noalloc_bad/bad.go:40: noalloc", // boxed argument
			"testdata/src/noalloc_bad/bad.go:45: noalloc", // variadic interface slice
			"testdata/src/noalloc_bad/bad.go:50: noalloc", // append not reassigned
			"testdata/src/noalloc_bad/bad.go:56: noalloc", // make
			"testdata/src/noalloc_bad/bad.go:57: noalloc", // map literal
			"testdata/src/noalloc_bad/bad.go:59: noalloc", // slice literal
			"testdata/src/noalloc_bad/bad.go:61: noalloc", // &composite literal
			"testdata/src/noalloc_bad/bad.go:66: noalloc", // fmt call
			"testdata/src/noalloc_bad/bad.go:71: noalloc", // string concatenation
			"testdata/src/noalloc_bad/bad.go:76: noalloc", // string-to-slice copy
			"testdata/src/noalloc_bad/bad.go:84: noalloc", // new, in annotated func literal
		}},
		{"nogoroutine_bad", []string{
			"testdata/src/nogoroutine_bad/bad.go:5: nogoroutine",
			"testdata/src/nogoroutine_bad/bad.go:9: nogoroutine",
			"testdata/src/nogoroutine_bad/bad.go:12: nogoroutine",
			"testdata/src/nogoroutine_bad/bad.go:14: nogoroutine",
			"testdata/src/nogoroutine_bad/bad.go:20: nogoroutine",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadFixture(t, tc.name)
			got := diagLocs(Run([]*Package{pkg}, fixtureAnalyzers()))
			if len(got) != len(tc.want) {
				t.Fatalf("got %d findings %v, want %d %v", len(got), got, len(tc.want), tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("finding %d = %q, want %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestDiagnosticMessages spot-checks the message text of one finding per
// rule, including the canonical String rendering.
func TestDiagnosticMessages(t *testing.T) {
	checks := []struct {
		fixture, substr string
	}{
		{"determinism_bad", "import of math/rand"},
		{"determinism_bad", "time.Now is nondeterministic"},
		{"maporder_bad", "ordered output (append); sort the keys first"},
		{"exhaustive_bad", "switch over state misses done and has no panicking default"},
		{"exhaustive_bad", "switch over state misses busy, done and its default does not panic"},
		{"nogoroutine_bad", "go statement in sim-core package"},
		{"lifetime_bad", "use of o after release at line 39"},
		{"lifetime_bad", "double release of o; already released at line 45"},
		{"lifetime_bad", "release of o inside a loop, but it was acquired once outside the loop"},
		{"lifetime_bad", "borrowed buffer from o escapes into field h.buf"},
		{"lifetime_bad", "borrowed buffer from o escapes into package-level variable global"},
		{"lifetime_bad", "borrowed buffer from o captured by closure"},
		{"noalloc_bad", "func literal captures n; allocates a closure"},
		{"noalloc_bad", "n (int) is boxed into interface in return"},
		{"noalloc_bad", "boxes 2 argument(s) into its variadic interface slice"},
		{"noalloc_bad", "append(s.vals, v) is not reassigned to s.vals; growth allocates"},
		{"noalloc_bad", "make([]int, n) allocates"},
		{"noalloc_bad", "call to fmt.Sprintf allocates"},
		{"noalloc_bad", "string concatenation a + b allocates"},
	}
	for _, c := range checks {
		pkg := loadFixture(t, c.fixture)
		diags := Run([]*Package{pkg}, fixtureAnalyzers())
		found := false
		for _, d := range diags {
			s := d.String()
			if strings.Contains(s, c.substr) {
				found = true
				if !strings.Contains(s, ": ") || !strings.HasPrefix(s, "testdata/src/") {
					t.Errorf("diagnostic %q not in file:line: rule: message form", s)
				}
			}
		}
		if !found {
			t.Errorf("%s: no finding containing %q in %v", c.fixture, c.substr, diags)
		}
	}
}

// TestAllowWithoutComment establishes the allow fixture's suppressions are
// load-bearing: the same package analyzed without allow filtering (calling
// the analyzer directly rather than through Run) reports both wall-clock
// reads.
func TestAllowWithoutComment(t *testing.T) {
	pkg := loadFixture(t, "allow")
	det := &Determinism{SimCore: func(string) bool { return true }}
	diags := det.Check(pkg)
	if len(diags) != 2 {
		t.Fatalf("raw determinism check on allow fixture = %d findings %v, want 2", len(diags), diags)
	}
}

// TestModuleClean runs the production configuration over the whole module:
// the tree the repository ships must carry zero findings, which is exactly
// what `go run ./cmd/simcheck ./...` enforces in CI.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("LoadModule found only %d packages", len(pkgs))
	}
	for _, d := range Run(pkgs, DefaultAnalyzers()) {
		t.Errorf("unexpected finding: %s", d)
	}
}
