// Package analysis implements simcheck, the repository's static-analysis
// suite. It certifies by machine the two conventions the simulator's
// reproducibility story rests on:
//
//   - Determinism by construction: simulator-core packages never read wall
//     clocks, environment variables or math/rand (all randomness flows
//     through internal/sim's seeded xorshift), never iterate maps into
//     ordered output, and never spawn goroutines (concurrency lives only in
//     internal/sweep's worker pool).
//   - Exhaustive enum handling: every switch over an iota-enumerated type
//     either covers all of the type's constants or carries a panicking
//     default, so a new message type or port can never be silently dropped.
//
// Six analyzers implement the code layer: determinism, maporder,
// exhaustive, nogoroutine, and the two memory-discipline rules lifetime and
// noalloc (statically enforcing the pooled-object and zero-allocation
// contracts of the calendar-queue engine; see annotations.go for their
// //simcheck:pool and //simcheck:noalloc grammar). The design layer — the
// channel-dependency-graph proof of routing deadlock freedom — lives in the
// cdg subpackage.
//
// A finding can be suppressed by an escape comment on the same line or the
// line directly above it:
//
//	//simcheck:allow determinism -- progress reporting is wall-clock by design
//
// Findings print as "file:line: rule: message", one per line, and any
// finding makes simcheck exit nonzero, so the suite is CI-enforceable.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the canonical file:line: rule: message form.
// The file path is printed as given (the loader stores module-relative
// paths).
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one simcheck rule.
type Analyzer interface {
	// Name returns the rule name used in diagnostics and allow comments.
	Name() string
	// Check analyzes one package and returns its findings.
	Check(pkg *Package) []Diagnostic
}

// simCorePackages are the module packages whose code must be deterministic
// and goroutine-free: everything that contributes to simulation results.
var simCorePackages = map[string]bool{
	"repro/internal/sim":         true,
	"repro/internal/coherence":   true,
	"repro/internal/network":     true,
	"repro/internal/faults":      true,
	"repro/internal/routing":     true,
	"repro/internal/topology":    true,
	"repro/internal/directory":   true,
	"repro/internal/workload":    true,
	"repro/internal/metrics":     true,
	"repro/internal/experiments": true,
	"repro/internal/cache":       true,
	"repro/internal/grouping":    true,
	"repro/internal/trace":       true,
	"repro/internal/apps":        true,
	"repro/internal/oracle":      true,
}

// DefaultSimCore reports whether an import path is a simulator-core package
// under the determinism discipline.
func DefaultSimCore(path string) bool { return simCorePackages[path] }

// DefaultAnalyzers returns the full production rule set.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		&Determinism{SimCore: determinismScope},
		&MapOrder{},
		&Exhaustive{},
		&NoGoroutine{SimCore: DefaultSimCore},
		&Lifetime{},
		&NoAlloc{},
	}
}

// determinismScope extends the sim-core set with internal/sweep: the sweep
// engine is allowed concurrency but not unannotated wall-clock reads (its
// few legitimate uses carry //simcheck:allow comments).
func determinismScope(path string) bool {
	return DefaultSimCore(path) || path == "repro/internal/sweep"
}

// Run applies every analyzer to every package, drops findings covered by
// allow comments, and returns the remainder sorted by file, line and rule.
// Analyzers implementing Preparer see the whole package set first, so
// cross-package annotation registries (pool APIs) resolve before any Check.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	for _, a := range analyzers {
		if p, ok := a.(Preparer); ok {
			p.Prepare(pkgs)
		}
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg)
		for _, a := range analyzers {
			for _, d := range a.Check(pkg) {
				if allows.covers(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// allowSet records, per file and line, the rule names an //simcheck:allow
// comment suppresses. Line 0 holds the file-scoped rules declared by
// //simcheck:allow-file directives.
type allowSet map[string]map[int][]string

const (
	allowPrefix = "//simcheck:allow"
	// allowFilePrefix suppresses a rule for the whole file. It exists for
	// packages whose entire purpose violates a rule — the serving layer's
	// channel-based batcher under nogoroutine, say — where a per-line escape
	// on every send, receive and select would bury the code. The directive
	// still requires a written reason, and scoping it per file (not per
	// package) keeps the exemption reviewable next to the code it covers.
	allowFilePrefix = "//simcheck:allow-file"
)

// collectAllows scans every comment in the package for allow directives.
func collectAllows(pkg *Package) allowSet {
	set := allowSet{}
	record := func(filename string, line int, rules []string) {
		lines := set[filename]
		if lines == nil {
			lines = map[int][]string{}
			set[filename] = lines
		}
		lines[line] = append(lines[line], rules...)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				text, fileScope := c.Text, false
				if strings.HasPrefix(text, allowFilePrefix) {
					text, fileScope = strings.TrimPrefix(text, allowFilePrefix), true
				} else {
					text = strings.TrimPrefix(text, allowPrefix)
				}
				// The rule list is the first field; anything after it (an
				// optional "-- reason") is commentary.
				fields := strings.Fields(strings.TrimSpace(text))
				if len(fields) == 0 {
					continue
				}
				rules := strings.Split(fields[0], ",")
				pos := pkg.Fset.Position(c.Pos())
				if fileScope {
					record(pos.Filename, 0, rules)
				} else {
					record(pos.Filename, pos.Line, rules)
				}
			}
		}
	}
	return set
}

// covers reports whether d is suppressed by an allow comment on its line or
// the line directly above, or by a file-scoped allow-file directive.
func (s allowSet) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1, 0} {
		for _, rule := range lines[line] {
			if rule == d.Rule || rule == "all" {
				return true
			}
		}
	}
	return false
}
