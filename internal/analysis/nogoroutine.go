package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// NoGoroutine forbids concurrency constructs in simulator-core packages:
// go statements, channel operations, select statements and imports of sync.
// The simulator is a single-threaded discrete-event machine; the only
// concurrency in the module is internal/sweep's worker pool, which runs
// whole independent simulations and merges their results in point order.
type NoGoroutine struct {
	// SimCore selects the packages under the rule; nil means DefaultSimCore.
	SimCore func(path string) bool
}

// Name implements Analyzer.
func (*NoGoroutine) Name() string { return "nogoroutine" }

// Check implements Analyzer.
func (a *NoGoroutine) Check(pkg *Package) []Diagnostic {
	inScope := a.SimCore
	if inScope == nil {
		inScope = DefaultSimCore
	}
	if !inScope(pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	flag := func(pos token.Pos, what string) {
		diags = append(diags, Diagnostic{
			Pos:     pkg.Fset.Position(pos),
			Rule:    a.Name(),
			Message: what + " in sim-core package; concurrency lives only in internal/sweep",
		})
	}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync" || strings.HasPrefix(path, "sync/") {
				flag(imp.Pos(), "import of "+path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				flag(n.Pos(), "go statement")
			case *ast.SendStmt:
				flag(n.Pos(), "channel send")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					flag(n.Pos(), "channel receive")
				}
			case *ast.SelectStmt:
				flag(n.Pos(), "select statement")
			case *ast.ChanType:
				flag(n.Pos(), "channel type")
			}
			return true
		})
	}
	return diags
}
