// Package cdg builds and verifies the Dally-Seitz channel dependency graph
// of the simulator's wormhole network, proving the routing layer's deadlock
// freedom claim: for every base routing scheme, every path the scheme can
// produce — unicast paths and BRCP multidestination worm paths alike — the
// graph of "holds channel A while requesting channel B" dependencies is
// acyclic.
//
// # The model
//
// Vertices are the network's channel resources:
//
//   - inj(vn, v): node v's injection channel on virtual network vn.
//   - link(vn, c, v, d): the link channel of class c entering node v by a
//     hop in direction d on virtual network vn. E-cube and west-first need
//     a single link class; planar-adaptive needs two (see below).
//   - cons(v, c): one of node v's request-network consumption channels,
//     claimed by a delivering worm of class c. For e-cube and west-first
//     the class is the arrival direction, so a 2-D mesh needs exactly the
//     paper's four consumption channels per interface.
//   - cons(v, reply): node v's reply-network consumption channel. Reply
//     deliveries are always final (nothing is forwarded past them), so the
//     drain completes unconditionally and the vertex is a sink.
//   - iack(v, c): node v's i-ack buffer entry reserved by an i-reserve worm
//     of class c.
//
// Edges are the direct-successor dependencies: a worm holds its current
// channel — and, at intermediate destinations, a consumption channel or
// i-ack entry — while requesting the next link on its path. The full
// holds-while-requests relation is the transitive closure of these edges
// along each path, and a transitive closure is acyclic iff the underlying
// relation is, so checking the direct edges suffices.
//
// Which (incoming direction -> outgoing direction) turns can occur is
// governed exactly by the base routing's conformance DFA (routing.DFA):
// a BRCP multidestination worm may only follow paths the base routing
// could produce, so enumerating all reachable (node, DFA state, last move)
// triples enumerates the dependency edges of *every* conformed path — the
// whole point of base-routing conformance is that this set is closed.
//
// # The two virtual networks only depend one way
//
// Forward-and-absorb holds are a request-network phenomenon: only multicast
// and i-reserve worms occupy a consumption channel (and an i-ack entry) at
// an intermediate destination while their header keeps requesting links,
// and both ride the request network. An i-gather worm holds no consumption
// channel at intermediate destinations (it collects posted acks from the
// i-ack buffer), and its stalls waiting for a post are processor-bounded,
// not network-bounded: the home's group launches the gather from the *last*
// member of the group, after the reserve worm has delivered everywhere, so
// a missing post only awaits the local cache's invalidate latency. The one
// genuine request->reply dependency is i-ack entry release: a full i-ack
// file blocks an i-reserve worm until a gather traverses reply links to
// collect the entries, which the graph records as iack -> reply-link edges.
// With reply consumption channels partitioned from the request ones (a
// per-VN split of each interface's consumption channels), no reply-side
// resource ever waits on a request-side one, the dependency between the
// virtual networks is one-way, and acyclicity decomposes per network.
//
// Worms on the reply network follow the reverse base routing (an i-gather
// worm retraces its i-reserve worm's path backwards). The reverse
// discipline's automaton is derived mechanically from the forward DFA by
// subset construction over the reversed, direction-flipped language, so no
// hand-written reverse router can drift out of sync with the real one.
//
// # Planar-adaptive needs two link classes
//
// A monotone staircase discipline admits every turn somewhere: a worm that
// has not yet moved in X may turn north then west, another east then north,
// and the union of their turns closes an E -> N -> W -> S cycle through
// single link channels even though no single worm makes all four turns.
// This is the classical observation that minimal adaptive routing needs
// virtual channels. The verifier therefore splits planar-adaptive channels
// into two classes by X-commitment — "w" once the worm has hopped west,
// "e" otherwise (east-committed or still uncommitted) — the double-y
// scheme's partition. Class transitions are one-way (e -> w, on the first
// westward hop), each class is internally monotone, and the graph is
// acyclic again. E-cube and west-first forbid the offending turns in the
// DFA itself and verify with a single class, i.e. with the unsplit
// channels the paper's router uses.
//
// The protocol-level obligations that are *not* channel dependencies — an
// i-ack post always arrives because the local processor always consumes,
// and the simulator's pooled (rather than class-indexed) grant of the
// physical consumption channels — are discussed in DESIGN.md.
package cdg

import (
	"fmt"
	"strings"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Graph is a channel dependency graph.
type Graph struct {
	names []string
	index map[string]int
	succ  [][]int
	edges map[[2]int]bool
}

func newGraph() *Graph {
	return &Graph{index: map[string]int{}, edges: map[[2]int]bool{}}
}

func (g *Graph) vertex(name string) int {
	if i, ok := g.index[name]; ok {
		return i
	}
	i := len(g.names)
	g.index[name] = i
	g.names = append(g.names, name)
	g.succ = append(g.succ, nil)
	return i
}

func (g *Graph) edge(from, to string) {
	f, t := g.vertex(from), g.vertex(to)
	if g.edges[[2]int{f, t}] {
		return
	}
	g.edges[[2]int{f, t}] = true
	g.succ[f] = append(g.succ[f], t)
}

// HasEdge reports whether the dependency from -> to is in the graph.
func (g *Graph) HasEdge(from, to string) bool {
	f, okF := g.index[from]
	t, okT := g.index[to]
	return okF && okT && g.edges[[2]int{f, t}]
}

// Vertices returns the vertex count.
func (g *Graph) Vertices() int { return len(g.names) }

// Edges returns the edge count.
func (g *Graph) Edges() int { return len(g.edges) }

// Cycle returns the vertex names of one directed cycle, or nil when the
// graph is acyclic. Detection is an iterative three-color DFS in vertex
// insertion order, so the result is deterministic.
func (g *Graph) Cycle() []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(g.names))
	parent := make([]int, len(g.names))
	for i := range parent {
		parent[i] = -1
	}
	type frame struct{ v, next int }
	for start := range g.names {
		if color[start] != white {
			continue
		}
		stack := []frame{{v: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.succ[f.v]) {
				w := g.succ[f.v][f.next]
				f.next++
				switch color[w] {
				case white:
					color[w] = gray
					parent[w] = f.v
					stack = append(stack, frame{v: w})
				case gray:
					// Back edge f.v -> w closes a cycle. The parent walk
					// yields w's successors in reverse; flip that tail so
					// the result reads in edge direction, then close the
					// loop by repeating w.
					cycle := []string{g.names[w]}
					for v := f.v; v != w; v = parent[v] {
						cycle = append(cycle, g.names[v])
					}
					for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
						cycle[i], cycle[j] = cycle[j], cycle[i]
					}
					return append(cycle, g.names[w])
				}
			} else {
				color[f.v] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// stepper abstracts a routing discipline's conformance automaton. States
// are opaque; ok=false marks a non-conformable move.
type stepper interface {
	start() uint32
	step(st uint32, mv topology.Port) (uint32, bool)
}

// forward runs the base routing's own DFA (request virtual network).
type forward struct{ d routing.DFA }

func (f forward) start() uint32 { return uint32(f.d.Start()) }

func (f forward) step(st uint32, mv topology.Port) (uint32, bool) {
	ns, ok := f.d.Step(int(st), mv)
	return uint32(ns), ok
}

// reverse accepts exactly the retraced paths: a move sequence s1..sn is
// accepted iff opposite(sn)..opposite(s1) is accepted by the forward DFA.
// It is the subset construction over the forward automaton: the state is
// the bitmask of forward states from which the direction-flipped reversal
// of the moves consumed so far still runs without failing. Every forward
// state is accepting (conformance = never failing), so acceptance here is
// mask non-emptiness — a sound over-approximation for dependency edges.
type reverse struct {
	d      routing.DFA
	states int
}

func (r reverse) start() uint32 { return (1 << r.states) - 1 }

func (r reverse) step(mask uint32, mv topology.Port) (uint32, bool) {
	var next uint32
	for q := 0; q < r.states; q++ {
		t, ok := r.d.Step(q, mv.Opposite())
		if ok && mask&(1<<uint(t)) != 0 {
			next |= 1 << uint(q)
		}
	}
	return next, next != 0
}

// X-commitment tracking for the planar-adaptive channel-class split.
const (
	xNone = iota // no X hop yet: rides the "e" class until committed
	xEast
	xWest
)

func commitX(xc int, mv topology.Port) int {
	if xc == xNone {
		if mv == topology.East {
			return xEast
		}
		if mv == topology.West {
			return xWest
		}
	}
	return xc
}

// disc bundles one virtual network's routing discipline with its channel
// structure.
type disc struct {
	vn int
	st stepper
	// split selects the planar-adaptive two-class channel partition by
	// X-commitment; false means a single (unnamed) class.
	split bool
	// holds marks the request network: its multicast/i-reserve worms hold
	// consumption channels and i-ack entries at intermediate destinations
	// while requesting further links. Reply-network deliveries are final.
	holds bool
}

// class returns the channel class of a worm with X-commitment xc.
func (d disc) class(xc int) string {
	if !d.split {
		return ""
	}
	if xc == xWest {
		return "w"
	}
	return "e"
}

func (d disc) injName(v topology.NodeID) string {
	return fmt.Sprintf("inj%d@%d", d.vn, v)
}

// linkName names the link channel entering v by a hop in direction mv, for
// a worm whose X-commitment after that hop is xc.
func (d disc) linkName(v topology.NodeID, mv topology.Port, xc int) string {
	if c := d.class(xc); c != "" {
		return fmt.Sprintf("link%d:%s:%v->%d", d.vn, c, mv, v)
	}
	return fmt.Sprintf("link%d:%v->%d", d.vn, mv, v)
}

// consName names the request-network consumption channel a worm of class
// (xc, arrival direction mv) delivers through at v.
func (d disc) consName(v topology.NodeID, mv topology.Port, xc int) string {
	if c := d.class(xc); c != "" {
		return fmt.Sprintf("cons:%s.%v@%d", c, mv, v)
	}
	return fmt.Sprintf("cons:%v@%d", mv, v)
}

func (d disc) iackName(v topology.NodeID, mv topology.Port, xc int) string {
	if c := d.class(xc); c != "" {
		return fmt.Sprintf("iack:%s.%v@%d", c, mv, v)
	}
	return fmt.Sprintf("iack:%v@%d", mv, v)
}

// replyConsName names the reply-network consumption channel at v: a sink —
// reply deliveries are final, so the drain completes unconditionally.
func replyConsName(v topology.NodeID) string {
	return fmt.Sprintf("cons:reply@%d", v)
}

var hopPorts = [...]topology.Port{topology.East, topology.West, topology.North, topology.South}

// disciplines returns the two virtual networks' disciplines for base b.
func disciplines(b routing.Base) (request, reply disc) {
	d := b.DFA()
	split := b == routing.PlanarAdaptive
	request = disc{vn: 0, st: forward{d: d}, split: split, holds: true}
	reply = disc{vn: 1, st: reverse{d: d, states: d.States()}, split: split}
	return request, reply
}

// Build constructs the channel dependency graph for base routing b on mesh
// m: request-network edges from the forward discipline, reply-network edges
// from the reverse discipline, plus the one-way iack -> reply-link release
// edges tying them together.
func Build(b routing.Base, m *topology.Mesh) *Graph {
	return BuildDegraded(b, m, nil)
}

// BuildDegraded constructs the channel dependency graph of the degraded
// fabric: dead links (and links implied by dead routers) are excluded from
// the neighbor enumeration, so no dependency edge crosses a failed resource.
// A nil or empty dead set reproduces Build exactly. Because removing edges
// from an acyclic graph cannot create a cycle, the degraded graph of any
// healthy-verified base is acyclic by construction — BuildDegraded exists to
// prove that claim mechanically rather than assume it.
func BuildDegraded(b routing.Base, m *topology.Mesh, dead *topology.DeadSet) *Graph {
	g := newGraph()
	request, reply := disciplines(b)
	addDiscipline(g, m, request, dead)
	replyLinks := addDiscipline(g, m, reply, dead)
	addReleaseEdges(g, m, request, replyLinks)
	return g
}

// addDiscipline explores every (node, automaton state, X-commitment, last
// move) tuple reachable by paths of the discipline and records the
// dependency edges of all of them. It returns the set of link-channel
// vertex names created, grouped by the node the link enters.
func addDiscipline(g *Graph, m *topology.Mesh, d disc, dead *topology.DeadSet) map[topology.NodeID][]string {
	type pstate struct {
		node topology.NodeID
		st   uint32
		last topology.Port // Local marks "just injected, no move yet"
		xc   int
	}
	links := map[topology.NodeID][]string{}
	linkSeen := map[string]bool{}
	seen := map[pstate]bool{}
	var queue []pstate
	for id := 0; id < m.Nodes(); id++ {
		p := pstate{node: topology.NodeID(id), st: d.st.start(), last: topology.Local, xc: xNone}
		seen[p] = true
		queue = append(queue, p)
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]

		var from, cons, iack string
		if p.last == topology.Local {
			from = d.injName(p.node)
			g.vertex(from)
		} else {
			from = d.linkName(p.node, p.last, p.xc)
			if !linkSeen[from] {
				linkSeen[from] = true
				links[p.node] = append(links[p.node], from)
			}
			if d.holds {
				// Any node a worm occupies by a network hop can be one of
				// its destinations: delivery claims a consumption channel,
				// and an i-reserve worm additionally claims an i-ack buffer
				// entry, while the worm still holds the link it arrived on.
				cons = d.consName(p.node, p.last, p.xc)
				iack = d.iackName(p.node, p.last, p.xc)
				g.edge(from, cons)
				g.edge(from, iack)
			} else {
				// Reply deliveries are final: the drain holds the reply
				// consumption channel but completes unconditionally, so the
				// vertex gets no outgoing edges.
				g.edge(from, replyConsName(p.node))
			}
		}
		for _, mv := range hopPorts {
			next, ok := m.Neighbor(p.node, mv)
			if !ok || dead.LinkDead(p.node, next) {
				continue
			}
			nst, ok := d.st.step(p.st, mv)
			if !ok {
				continue
			}
			nxc := commitX(p.xc, mv)
			to := d.linkName(next, mv, nxc)
			g.edge(from, to)
			if cons != "" {
				// A multicast or i-reserve worm serviced as an intermediate
				// destination at p.node keeps holding the consumption channel
				// and i-ack entry until its tail passes — well after its
				// header requests the next link.
				g.edge(cons, to)
				g.edge(iack, to)
			}
			np := pstate{node: next, st: nst, last: mv, xc: nxc}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return links
}

// addReleaseEdges records the one request->reply dependency: a reserved
// i-ack entry at v is freed only when the transaction's i-gather worm
// reaches v over the reply network, so a reserve worm blocked on a full
// i-ack file waits, transitively, on reply link channels into v.
func addReleaseEdges(g *Graph, m *topology.Mesh, request disc, replyLinks map[topology.NodeID][]string) {
	for id := 0; id < m.Nodes(); id++ {
		v := topology.NodeID(id)
		in := replyLinks[v]
		if len(in) == 0 {
			continue
		}
		for _, mv := range hopPorts {
			if _, ok := m.Neighbor(v, mv); !ok {
				continue
			}
			for _, xc := range []int{xNone, xEast, xWest} {
				name := request.iackName(v, mv, xc)
				if _, exists := g.index[name]; !exists {
					continue
				}
				for _, rl := range in {
					g.edge(name, rl)
				}
			}
		}
	}
}

// Result is the verification outcome for one (base routing, mesh) pair.
type Result struct {
	Base     routing.Base
	K        int
	Vertices int
	Edges    int
	// ConsChannels is the number of request-network consumption-channel
	// classes per node interface the verified discipline partitions into:
	// 4 (one per arrival direction — the paper's count) for e-cube and
	// west-first, 8 (split by X-commitment) for planar-adaptive.
	ConsChannels int
	// Cycle is nil when the graph is acyclic; otherwise one offending
	// dependency cycle, first vertex repeated at the end.
	Cycle []string
	// Problems lists cross-validation failures: concrete router paths that
	// do not conform or whose dependencies are missing from the graph.
	Problems []string
	// UnicastPaths and WormPaths count the concrete paths cross-validated
	// against the graph (see Verify).
	UnicastPaths int
	WormPaths    int
	// DeadLinks and DeadRouters describe the degraded fabric the graph was
	// built for (both zero for a healthy Verify).
	DeadLinks   int
	DeadRouters int
}

// OK reports whether the configuration verified cleanly.
func (r Result) OK() bool { return r.Cycle == nil && len(r.Problems) == 0 }

func (r Result) String() string {
	status := "acyclic"
	if r.Cycle != nil {
		status = "CYCLE " + strings.Join(r.Cycle, " -> ")
	}
	if len(r.Problems) > 0 {
		status += "; " + strings.Join(r.Problems, "; ")
	}
	degraded := ""
	if r.DeadLinks > 0 || r.DeadRouters > 0 {
		degraded = fmt.Sprintf(" [degraded: %d dead links, %d dead routers]", r.DeadLinks, r.DeadRouters)
	}
	return fmt.Sprintf("cdg: %v %dx%d%s: %d vertices, %d edges, %d cons classes, %d unicast + %d worm paths checked: %s",
		r.Base, r.K, r.K, degraded, r.Vertices, r.Edges, r.ConsChannels, r.UnicastPaths, r.WormPaths, status)
}

// Verify builds the dependency graph for base b on a k x k mesh, checks it
// acyclic, and cross-validates the abstraction against the concrete router:
// every unicast path and a systematic family of BRCP multidestination worm
// paths (via PathThrough) must conform and have all their dependency edges
// present in the graph, and each worm path's retraced gather path must be
// covered by the reply network's edges.
func Verify(b routing.Base, k int) Result {
	m := topology.NewSquareMesh(k)
	g := Build(b, m)
	request, reply := disciplines(b)
	res := Result{Base: b, K: k, Vertices: g.Vertices(), Edges: g.Edges(), Cycle: g.Cycle(), ConsChannels: 4}
	if request.split {
		res.ConsChannels = 8
	}

	check := func(path []topology.NodeID) {
		moves := routing.Moves(m, path)
		if !b.Conforms(moves) {
			res.Problems = append(res.Problems, fmt.Sprintf("NONCONFORMED path from %v", m.Coord(path[0])))
			return
		}
		if bad := pathCovered(g, request, path, moves); bad != "" {
			res.Problems = append(res.Problems, bad)
			return
		}
		// The retraced (gather) path on the reply network.
		if bad := pathCovered(g, reply, reversed(path), oppositeReversed(moves)); bad != "" {
			res.Problems = append(res.Problems, bad)
		}
	}

	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			if src == dst {
				continue
			}
			check(b.UnicastPath(m, topology.NodeID(src), topology.NodeID(dst)))
			res.UnicastPaths++
		}
	}
	for _, wps := range wormWaypointSets(m) {
		path, err := b.PathThrough(m, wps)
		if err != nil {
			continue // no conformed path for this set; the scheme splits it
		}
		if len(path) < 2 {
			continue
		}
		check(path)
		res.WormPaths++
	}
	return res
}

// pathCovered replays a concrete path under discipline d and checks that
// every direct-successor dependency it generates is an edge of the graph;
// it returns a description of the first missing edge, or "".
func pathCovered(g *Graph, d disc, path []topology.NodeID, moves []topology.Port) string {
	st, xc := d.st.start(), xNone
	prev := d.injName(path[0])
	prevCons, prevIAck := "", ""
	for i, mv := range moves {
		nst, ok := d.st.step(st, mv)
		if !ok {
			return fmt.Sprintf("NONCONFORMED retrace at hop %d (%v)", i, mv)
		}
		nxc := commitX(xc, mv)
		next := d.linkName(path[i+1], mv, nxc)
		if !g.HasEdge(prev, next) {
			return fmt.Sprintf("MISSING edge %s -> %s", prev, next)
		}
		if prevCons != "" {
			// The worm was serviced as an intermediate destination one hop
			// back; it still holds that node's cons/iack while requesting
			// this link.
			if !g.HasEdge(prevCons, next) || !g.HasEdge(prevIAck, next) {
				return fmt.Sprintf("MISSING hold edge %s -> %s", prevCons, next)
			}
		}
		prevCons, prevIAck = "", ""
		if d.holds {
			cons := d.consName(path[i+1], mv, nxc)
			iack := d.iackName(path[i+1], mv, nxc)
			if !g.HasEdge(next, cons) || !g.HasEdge(next, iack) {
				return fmt.Sprintf("MISSING destination-service edges at node %d", path[i+1])
			}
			prevCons, prevIAck = cons, iack
		} else if i == len(moves)-1 {
			if want := replyConsName(path[i+1]); !g.HasEdge(next, want) {
				return fmt.Sprintf("MISSING edge %s -> %s", next, want)
			}
		}
		st, xc, prev = nst, nxc, next
	}
	return ""
}

func reversed(path []topology.NodeID) []topology.NodeID {
	out := make([]topology.NodeID, len(path))
	for i, v := range path {
		out[len(path)-1-i] = v
	}
	return out
}

func oppositeReversed(moves []topology.Port) []topology.Port {
	out := make([]topology.Port, len(moves))
	for i, mv := range moves {
		out[len(moves)-1-i] = mv.Opposite()
	}
	return out
}

// wormWaypointSets enumerates a systematic family of multidestination
// waypoint sequences for cross-validation: every column and row scanned
// from every edge node, boustrophedon snakes across the whole mesh, and
// both diagonals from every corner. These are the shapes the paper's
// grouping schemes emit (column worms, row-wise snakes, planar-adaptive
// diagonals).
func wormWaypointSets(m *topology.Mesh) [][]topology.NodeID {
	var sets [][]topology.NodeID
	w, h := m.Width(), m.Height()
	at := func(x, y int) topology.NodeID { return m.ID(topology.Coord{X: x, Y: y}) }

	// Column sweeps, both directions.
	for x := 0; x < w; x++ {
		var up, down []topology.NodeID
		for y := 0; y < h; y++ {
			up = append(up, at(x, y))
			down = append(down, at(x, h-1-y))
		}
		sets = append(sets, up, down)
	}
	// Row sweeps, both directions.
	for y := 0; y < h; y++ {
		var right, left []topology.NodeID
		for x := 0; x < w; x++ {
			right = append(right, at(x, y))
			left = append(left, at(w-1-x, y))
		}
		sets = append(sets, right, left)
	}
	// Boustrophedon snakes: west-to-east and east-to-west column order.
	var snakeE, snakeW []topology.NodeID
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			yy := y
			if x%2 == 1 {
				yy = h - 1 - y
			}
			snakeE = append(snakeE, at(x, yy))
			snakeW = append(snakeW, at(w-1-x, yy))
		}
	}
	sets = append(sets, snakeE, snakeW)
	// Diagonal staircases from each corner.
	n := w
	if h < n {
		n = h
	}
	var d1, d2, d3, d4 []topology.NodeID
	for i := 0; i < n; i++ {
		d1 = append(d1, at(i, i))
		d2 = append(d2, at(n-1-i, n-1-i))
		d3 = append(d3, at(i, n-1-i))
		d4 = append(d4, at(n-1-i, i))
	}
	sets = append(sets, d1, d2, d3, d4)
	// Sparse multi-leg hops (non-adjacent waypoints exercising the leg
	// realization search).
	if w >= 3 && h >= 3 {
		sets = append(sets,
			[]topology.NodeID{at(0, 0), at(w-1, 0), at(w-1, h-1)},
			[]topology.NodeID{at(0, h-1), at(w/2, h/2), at(w-1, 0)},
			[]topology.NodeID{at(w-1, h-1), at(0, h-1), at(0, 0)},
			[]topology.NodeID{at(w/2, 0), at(0, h/2), at(w/2, h-1), at(w-1, h/2)},
		)
	}
	return sets
}

// Bases returns every base routing scheme under verification.
func Bases() []routing.Base {
	return []routing.Base{routing.ECube, routing.WestFirst, routing.PlanarAdaptive}
}

// VerifyAll verifies every base scheme on every k x k mesh for k in
// [2, maxK].
func VerifyAll(maxK int) []Result {
	var out []Result
	for _, b := range Bases() {
		for k := 2; k <= maxK; k++ {
			out = append(out, Verify(b, k))
		}
	}
	return out
}
