package cdg

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// TestBuildDegradedNilMatchesBuild pins the zero-perturbation contract at
// the analysis layer: an empty dead set must produce exactly the healthy
// graph — same vertex set, same edge set — for every base.
func TestBuildDegradedNilMatchesBuild(t *testing.T) {
	m := topology.NewSquareMesh(4)
	for _, b := range Bases() {
		healthy := Build(b, m)
		nilDead := BuildDegraded(b, m, nil)
		emptyDead := BuildDegraded(b, m, topology.NewDeadSet())
		for name, g := range map[string]*Graph{"nil": nilDead, "empty": emptyDead} {
			if g.Vertices() != healthy.Vertices() || g.Edges() != healthy.Edges() {
				t.Errorf("%v: BuildDegraded(%s dead) = %d vertices / %d edges, healthy has %d / %d",
					b, name, g.Vertices(), g.Edges(), healthy.Vertices(), healthy.Edges())
			}
		}
	}
}

// TestBuildDegradedIsSubgraph checks the structural half of the deadlock
// argument: the degraded graph's edges are a strict subset of the healthy
// graph's (removing edges from an acyclic graph cannot create a cycle).
func TestBuildDegradedIsSubgraph(t *testing.T) {
	m := topology.NewSquareMesh(4)
	dead := topology.NewDeadSet()
	dead.AddLink(m.ID(topology.Coord{X: 1, Y: 1}), m.ID(topology.Coord{X: 2, Y: 1}))
	dead.AddRouter(m.ID(topology.Coord{X: 3, Y: 3}))
	for _, b := range Bases() {
		healthy := Build(b, m)
		degraded := BuildDegraded(b, m, dead)
		if degraded.Edges() >= healthy.Edges() {
			t.Errorf("%v: degraded graph has %d edges, healthy %d — dead resources removed nothing",
				b, degraded.Edges(), healthy.Edges())
		}
		for from, succs := range degraded.succ {
			for _, to := range succs {
				if !healthy.HasEdge(degraded.names[from], degraded.names[to]) {
					t.Errorf("%v: degraded edge %s -> %s absent from healthy graph",
						b, degraded.names[from], degraded.names[to])
				}
			}
		}
	}
}

// TestVerifyDegradedSeededSweep is the degraded analogue of
// TestVerifyAllAcyclic: every base on meshes up to 6x6 (4x4 under -short)
// with 1, 2 and 4 seeded dead links must verify cleanly — acyclic, every
// live pair reachable over conformed relay legs, every leg edge-covered.
func TestVerifyDegradedSeededSweep(t *testing.T) {
	maxK := 6
	if testing.Short() {
		maxK = 4
	}
	for _, deadLinks := range []int{1, 2, 4} {
		results := VerifyAllDegraded(maxK, deadLinks, 0xCD6DEAD)
		if len(results) != 3*(maxK-1) {
			t.Fatalf("deadLinks=%d: %d results, want %d", deadLinks, len(results), 3*(maxK-1))
		}
		for _, r := range results {
			if !r.OK() {
				t.Errorf("deadLinks=%d: %s", deadLinks, r)
			}
			// Victim selection preserves connectivity but can resolve fewer
			// links than requested on tiny meshes; it must never exceed it.
			if r.DeadLinks > deadLinks {
				t.Errorf("%v %dx%d: resolved %d dead links, requested %d",
					r.Base, r.K, r.K, r.DeadLinks, deadLinks)
			}
			if r.K >= 4 && r.DeadLinks == 0 {
				t.Errorf("%v %dx%d: no link died (seeded selection resolved nothing)", r.Base, r.K, r.K)
			}
			// Dead links leave every router alive: all ordered pairs checked.
			if want := r.K * r.K * (r.K*r.K - 1); r.UnicastPaths != want {
				t.Errorf("%v %dx%d: checked %d live pairs, want %d", r.Base, r.K, r.K, r.UnicastPaths, want)
			}
		}
	}
}

// TestVerifyDegradedDeadRouter verifies the severest class: a dead router
// excises its node entirely. Pairs touching it are skipped, everything else
// must remain mutually reachable and covered.
func TestVerifyDegradedDeadRouter(t *testing.T) {
	m := topology.NewSquareMesh(5)
	center := m.ID(topology.Coord{X: 2, Y: 2})
	dead := topology.NewDeadSet()
	dead.AddRouter(center)
	for _, b := range Bases() {
		r := VerifyDegraded(b, 5, dead)
		if !r.OK() {
			t.Errorf("%s", r)
		}
		live := m.Nodes() - 1
		if want := live * (live - 1); r.UnicastPaths != want {
			t.Errorf("%v: checked %d live pairs, want %d", b, r.UnicastPaths, want)
		}
		if r.DeadRouters != 1 {
			t.Errorf("%v: DeadRouters = %d, want 1", b, r.DeadRouters)
		}
	}
}

// TestVerifyDegradedDetectsUnreachable establishes the reachability check is
// not vacuous: a dead set that severs the mesh into two components (legal to
// construct by hand, never produced by the injector) must be reported.
func TestVerifyDegradedDetectsUnreachable(t *testing.T) {
	m := topology.NewSquareMesh(3)
	dead := topology.NewDeadSet()
	// Cut the middle column's vertical seam: kill every link crossing x=0|1.
	for y := 0; y < 3; y++ {
		dead.AddLink(m.ID(topology.Coord{X: 0, Y: y}), m.ID(topology.Coord{X: 1, Y: y}))
	}
	r := VerifyDegraded(routing.ECube, 3, dead)
	if r.OK() {
		t.Fatal("VerifyDegraded accepted a disconnected fabric")
	}
	found := false
	for _, p := range r.Problems {
		if strings.Contains(p, "UNREACHABLE") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no UNREACHABLE problem reported; got %v", r.Problems)
	}
}

// TestDeadSetForDeterministic pins that the analysis layer and the simulator
// resolve identical victims from one seed: two independent derivations of
// the same (k, counts, seed) triple agree exactly.
func TestDeadSetForDeterministic(t *testing.T) {
	a := DeadSetFor(8, 4, 1, 0xFEED)
	b := DeadSetFor(8, 4, 1, 0xFEED)
	if !reflect.DeepEqual(a.Links(), b.Links()) || !reflect.DeepEqual(a.Routers(), b.Routers()) {
		t.Fatalf("DeadSetFor not deterministic: %v/%v vs %v/%v", a.Links(), a.Routers(), b.Links(), b.Routers())
	}
	if len(a.Links()) != 4 || len(a.Routers()) != 1 {
		t.Fatalf("resolved %d links / %d routers, want 4 / 1 on an 8x8 mesh", len(a.Links()), len(a.Routers()))
	}
	c := DeadSetFor(8, 4, 1, 0xFEED+1)
	if reflect.DeepEqual(a.Links(), c.Links()) && reflect.DeepEqual(a.Routers(), c.Routers()) {
		t.Fatal("different seeds resolved identical victim sets")
	}
}

// TestDegradedResultString pins the degraded annotation in the -cdg report.
func TestDegradedResultString(t *testing.T) {
	dead := topology.NewDeadSet()
	m := topology.NewSquareMesh(4)
	dead.AddLink(m.ID(topology.Coord{X: 0, Y: 0}), m.ID(topology.Coord{X: 1, Y: 0}))
	r := VerifyDegraded(routing.ECube, 4, dead)
	if !strings.Contains(r.String(), "[degraded: 1 dead links, 0 dead routers]") {
		t.Errorf("Result.String() = %q, missing degraded annotation", r.String())
	}
	if h := Verify(routing.ECube, 4); strings.Contains(h.String(), "degraded") {
		t.Errorf("healthy Result.String() = %q mentions degradation", h.String())
	}
}
