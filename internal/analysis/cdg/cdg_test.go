package cdg

import (
	"strings"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// TestVerifyAllAcyclic is the design-layer check run as a test: every base
// routing discipline on every mesh up to 6x6 must produce an acyclic channel
// dependency graph with all cross-validation paths covered. simcheck -cdg
// -mesh 8 runs the same verification at the paper's full mesh size.
func TestVerifyAllAcyclic(t *testing.T) {
	maxK := 6
	if testing.Short() {
		maxK = 4
	}
	results := VerifyAll(maxK)
	if len(results) == 0 {
		t.Fatal("VerifyAll returned no results")
	}
	for _, r := range results {
		if !r.OK() {
			t.Errorf("%s", r)
		}
		if r.UnicastPaths != r.K*r.K*(r.K*r.K-1) {
			t.Errorf("%v %dx%d: checked %d unicast paths, want %d",
				r.Base, r.K, r.K, r.UnicastPaths, r.K*r.K*(r.K*r.K-1))
		}
		if r.K >= 3 && r.WormPaths == 0 {
			t.Errorf("%v %dx%d: no multidestination worm paths cross-validated", r.Base, r.K, r.K)
		}
	}
}

// TestConsChannelClasses pins the consumption-channel partition sizes: four
// per node (one per arrival direction — the paper's count) for the
// deterministic disciplines, eight for planar-adaptive, whose X-committed
// and X-uncommitted traffic use distinct classes.
func TestConsChannelClasses(t *testing.T) {
	want := map[routing.Base]int{
		routing.ECube:          4,
		routing.WestFirst:      4,
		routing.PlanarAdaptive: 8,
	}
	for _, b := range Bases() {
		r := Verify(b, 4)
		if r.ConsChannels != want[b] {
			t.Errorf("%v: ConsChannels = %d, want %d", b, r.ConsChannels, want[b])
		}
	}
}

// TestCycleDetection establishes the acyclicity check is not vacuous: a
// hand-built graph with a 3-cycle reports it, and the reported walk is a
// closed chain of real edges.
func TestCycleDetection(t *testing.T) {
	g := newGraph()
	g.edge("a", "b")
	g.edge("b", "c")
	g.edge("c", "a")
	g.edge("c", "d") // acyclic appendage
	cyc := g.Cycle()
	if cyc == nil {
		t.Fatal("Cycle() = nil on a cyclic graph")
	}
	if cyc[0] != cyc[len(cyc)-1] {
		t.Fatalf("cycle %v does not close", cyc)
	}
	for i := 0; i+1 < len(cyc); i++ {
		if !g.HasEdge(cyc[i], cyc[i+1]) {
			t.Errorf("cycle step %s -> %s is not a graph edge", cyc[i], cyc[i+1])
		}
	}

	ok := newGraph()
	ok.edge("a", "b")
	ok.edge("b", "c")
	if cyc := ok.Cycle(); cyc != nil {
		t.Errorf("Cycle() = %v on an acyclic graph", cyc)
	}
}

// TestWestFirstReversalExcluded regression-tests the 180-degree reversal
// bug: the west-first DFA must reject a west hop followed by an east hop —
// no minimal base path does that, and admitting it closed link-level cycles
// in the dependency graph.
func TestWestFirstReversalExcluded(t *testing.T) {
	if routing.WestFirst.Conforms([]topology.Port{topology.West, topology.East}) {
		t.Fatal("west-first DFA accepts a W,E reversal; the CDG proof does not cover such paths")
	}
	m := topology.NewSquareMesh(4)
	g := Build(routing.WestFirst, m)
	// A reversal would need an edge from a westbound link into an eastbound
	// link at the same node on the request network; none may exist.
	for v := 0; v < m.Nodes(); v++ {
		n := topology.NodeID(v)
		west, okW := m.Neighbor(n, topology.West)
		east, okE := m.Neighbor(n, topology.East)
		if !okW || !okE {
			continue
		}
		request, _ := disciplines(routing.WestFirst)
		into := request.linkName(n, topology.West, xNone)
		outOf := request.linkName(west, topology.East, xNone)
		_ = east
		if g.HasEdge(into, outOf) {
			t.Errorf("node %d: westbound link feeds an eastbound link (reversal edge)", v)
		}
	}
}

// TestResultString pins the report format the -cdg flag prints.
func TestResultString(t *testing.T) {
	r := Verify(routing.ECube, 3)
	s := r.String()
	for _, want := range []string{"cdg: ecube 3x3:", "cons classes", "acyclic"} {
		if !strings.Contains(s, want) {
			t.Errorf("Result.String() = %q, missing %q", s, want)
		}
	}
}
