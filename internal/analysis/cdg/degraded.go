package cdg

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Degraded-fabric verification. When links or routers die permanently the
// protocol layer routes around the holes with degraded paths (PathAvoiding),
// multi-leg relay routes (RelayRoute) and re-realized group paths
// (PathThroughAvoiding). The safety argument has two halves:
//
//  1. Deadlock freedom. Every degraded leg is a conformed path of the same
//     base discipline, so its dependencies are a subset of the healthy CDG's
//     edges; the degraded graph is the healthy graph minus every edge that
//     crosses a dead resource, and removing edges from an acyclic graph
//     cannot create a cycle. Relay pivots break inter-leg dependencies by
//     store-and-forward: a worm is fully consumed at the pivot and the next
//     leg is a fresh injection, so no channel chain spans two legs.
//
//  2. Coverage. The degraded router must still be the abstraction's shadow:
//     every leg of every relay route between live routers, and every
//     re-realized worm path, must conform and have all its dependency edges
//     present in the degraded graph. And every pair of live routers must
//     remain mutually reachable (the fault injector only kills resources
//     whose loss keeps the survivors connected).
//
// VerifyDegraded checks both halves mechanically for one (base, mesh, dead
// set) triple; VerifyAllDegraded sweeps every base over a range of mesh
// sizes with deterministically seeded dead sets.

// VerifyDegraded builds the degraded dependency graph for base b on a k x k
// mesh with the given dead set, checks it acyclic, and cross-validates the
// degraded router against it: for every ordered pair of live routers a relay
// route must exist, each of its legs must conform and be edge-covered by the
// degraded graph (request direction and retraced reply direction), and every
// re-realizable multidestination waypoint family must verify the same way.
func VerifyDegraded(b routing.Base, k int, dead *topology.DeadSet) Result {
	m := topology.NewSquareMesh(k)
	g := BuildDegraded(b, m, dead)
	request, reply := disciplines(b)
	res := Result{
		Base: b, K: k,
		Vertices: g.Vertices(), Edges: g.Edges(), Cycle: g.Cycle(),
		ConsChannels: 4,
		DeadLinks:    len(dead.Links()),
		DeadRouters:  len(dead.Routers()),
	}
	if request.split {
		res.ConsChannels = 8
	}

	checkLeg := func(path []topology.NodeID) bool {
		moves := routing.Moves(m, path)
		if !b.Conforms(moves) {
			res.Problems = append(res.Problems,
				fmt.Sprintf("NONCONFORMED degraded leg from %v", m.Coord(path[0])))
			return false
		}
		for i := range moves {
			if dead.LinkDead(path[i], path[i+1]) {
				res.Problems = append(res.Problems,
					fmt.Sprintf("DEAD link %v-%v on degraded leg", path[i], path[i+1]))
				return false
			}
		}
		if bad := pathCovered(g, request, path, moves); bad != "" {
			res.Problems = append(res.Problems, bad)
			return false
		}
		// The retraced (gather / reply) direction on the reply network.
		if bad := pathCovered(g, reply, reversed(path), oppositeReversed(moves)); bad != "" {
			res.Problems = append(res.Problems, bad)
			return false
		}
		return true
	}

	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			s, d := topology.NodeID(src), topology.NodeID(dst)
			if s == d || dead.RouterDead(s) || dead.RouterDead(d) {
				continue
			}
			legs, ok := b.RelayRoute(m, s, d, dead)
			if !ok {
				res.Problems = append(res.Problems,
					fmt.Sprintf("UNREACHABLE live pair %v -> %v", m.Coord(s), m.Coord(d)))
				continue
			}
			res.UnicastPaths++
			for _, leg := range legs {
				if !checkLeg(leg) {
					break
				}
			}
		}
	}

	for _, wps := range wormWaypointSets(m) {
		live := true
		for _, wp := range wps {
			if dead.RouterDead(wp) {
				live = false
				break
			}
		}
		if !live {
			continue
		}
		path, err := b.PathThroughAvoiding(m, wps, dead)
		if err != nil {
			continue // no live conformed realization; the scheme falls back
		}
		if len(path) < 2 {
			continue
		}
		if checkLeg(path) {
			res.WormPaths++
		}
	}
	return res
}

// DeadSetFor derives the deterministic dead set a fault config with the
// given seed and hard-failure counts resolves to on a k x k mesh — the same
// victim selection the simulator's injector performs (connectivity
// preserving, hashed order), evaluated at its final state (all deaths
// occurred).
func DeadSetFor(k int, deadLinks, deadRouters int, seed uint64) *topology.DeadSet {
	inj := faults.New(faults.Config{
		Seed:        seed,
		DeadLinks:   deadLinks,
		DeadRouters: deadRouters,
	})
	inj.BindTopology(topology.NewSquareMesh(k))
	return inj.FinalDeadSet()
}

// VerifyAllDegraded verifies every base scheme on every k x k mesh for k in
// [2, maxK], each against a deterministically seeded dead set of deadLinks
// dead links. The per-k seed is derived from seed so different mesh sizes
// get independent victim selections.
func VerifyAllDegraded(maxK, deadLinks int, seed uint64) []Result {
	var out []Result
	for _, b := range Bases() {
		for k := 2; k <= maxK; k++ {
			dead := DeadSetFor(k, deadLinks, 0, sim.DeriveSeed(seed, uint64(k)))
			out = append(out, VerifyDegraded(b, k, dead))
		}
	}
	return out
}
