package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive checks switches over iota-enumerated types: every such switch
// must either cover all of the enum's constants or carry a default clause
// that panics. A silent fall-through is how a newly added message type or
// port gets dropped without a trace; a panicking default turns that bug
// into a loud failure at the first simulated cycle that hits it.
//
// An enum is a named integer type declared in this module with at least two
// package-level constants of that exact type. Constants whose names start
// with "Num"/"num" are counting sentinels (NumPorts, numVNs) and are not
// required to be covered.
type Exhaustive struct {
	// ModulePrefix limits enum detection to types declared in packages with
	// this import-path prefix; "" means the package under analysis and its
	// module siblings (derived from the package path's first element).
	ModulePrefix string
}

// Name implements Analyzer.
func (*Exhaustive) Name() string { return "exhaustive" }

// Check implements Analyzer.
func (a *Exhaustive) Check(pkg *Package) []Diagnostic {
	prefix := a.ModulePrefix
	if prefix == "" {
		prefix = pkg.Path
		if i := strings.IndexByte(prefix, '/'); i >= 0 {
			prefix = prefix[:i]
		}
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pkg.Info.Types[sw.Tag]
			if !ok || tv.Type == nil {
				return true
			}
			enum := enumFor(tv.Type, prefix)
			if enum == nil {
				return true
			}
			if d := a.checkSwitch(pkg, sw, enum); d != nil {
				diags = append(diags, *d)
			}
			return true
		})
	}
	return diags
}

// enumInfo describes one iota-enumerated named type.
type enumInfo struct {
	name string
	// members maps each required constant value (as an exact string) to one
	// of its names.
	members map[string]string
}

// enumFor identifies tag's type as a module-declared enum, or returns nil.
func enumFor(t types.Type, modulePrefix string) *enumInfo {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	path := obj.Pkg().Path()
	if path != modulePrefix && !strings.HasPrefix(path, modulePrefix+"/") {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	members := map[string]string{}
	total := 0
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		total++
		if strings.HasPrefix(name, "Num") || strings.HasPrefix(name, "num") {
			continue // counting sentinel, not a real member
		}
		key := c.Val().ExactString()
		if _, dup := members[key]; !dup {
			members[key] = name
		}
	}
	if total < 2 {
		return nil // one constant of a type is not an enumeration
	}
	return &enumInfo{name: obj.Name(), members: members}
}

// checkSwitch validates one switch against its enum.
func (a *Exhaustive) checkSwitch(pkg *Package, sw *ast.SwitchStmt, enum *enumInfo) *Diagnostic {
	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			etv, ok := pkg.Info.Types[e]
			if !ok || etv.Value == nil {
				// A non-constant case label makes coverage undecidable;
				// require a panicking default instead.
				continue
			}
			if etv.Value.Kind() == constant.Int {
				covered[etv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for val, name := range enum.members {
		if !covered[val] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if defaultClause != nil && clausePanics(defaultClause) {
		return nil
	}
	sort.Strings(missing)
	msg := "switch over " + enum.name + " misses " + strings.Join(missing, ", ")
	if defaultClause != nil {
		msg += " and its default does not panic"
	} else {
		msg += " and has no panicking default"
	}
	return &Diagnostic{
		Pos:     pkg.Fset.Position(sw.Pos()),
		Rule:    a.Name(),
		Message: msg,
	}
}

// clausePanics reports whether a case clause's body contains a call to the
// panic builtin.
func clausePanics(cc *ast.CaseClause) bool {
	panics := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if panics {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				panics = true
			}
			return true
		})
	}
	return panics
}
