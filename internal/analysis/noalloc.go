package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc statically enforces //simcheck:noalloc contracts: a function so
// marked (in its doc comment, or via a free-standing directive directly above
// a func literal) asserts that its steady-state body performs no heap
// allocation. The analyzer flags every allocation source it can see in the
// typed AST, naming the offending expression:
//
//   - func literals that capture variables (a closure allocation — the exact
//     thing AtCall/AfterCall(fn, arg, i) exists to avoid);
//   - conversions of concrete, non-pointer-shaped values to interface types,
//     whether explicit, at call-argument positions, in assignments, or in
//     returns (the value is boxed);
//   - calls passing arguments through a variadic interface parameter (the
//     []any itself allocates, as with fmt-style tracing);
//   - append whose result is not reassigned to its first operand (growth
//     allocates a new backing array; the x = append(x, ...) reuse idiom is
//     exempt);
//   - make, new, map and slice literals, and &composite literals;
//   - fmt package calls and non-constant string concatenation.
//
// Arguments of panic(...) are exempt: a panicking path is cold by
// definition, and the discipline only covers the steady state. Everything
// else is suppressed the usual way with //simcheck:allow noalloc.
type NoAlloc struct{}

// Name implements Analyzer.
func (*NoAlloc) Name() string { return "noalloc" }

// Check implements Analyzer.
func (a *NoAlloc) Check(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		litLines := noallocLitLines(pkg, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoallocDoc(fd.Doc) {
				continue
			}
			var sig *types.Signature
			if obj := pkg.Info.Defs[fd.Name]; obj != nil {
				sig, _ = obj.Type().(*types.Signature)
			}
			newNaChecker(pkg, &diags, sig).checkBody(fd.Body)
		}
		if len(litLines) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			line := pkg.Fset.Position(lit.Pos()).Line
			if !litLines[line] && !litLines[line-1] {
				return true
			}
			sig, _ := pkg.Info.TypeOf(lit).(*types.Signature)
			newNaChecker(pkg, &diags, sig).checkBody(lit.Body)
			return false
		})
	}
	return diags
}

type span struct{ lo, hi token.Pos }

type naChecker struct {
	pkg         *Package
	diags       *[]Diagnostic
	sig         *types.Signature // enclosing signature, for return checks
	sanctioned  map[*ast.CallExpr]bool
	innerAdds   map[*ast.BinaryExpr]bool
	panicRanges []span
}

func newNaChecker(pkg *Package, diags *[]Diagnostic, sig *types.Signature) *naChecker {
	return &naChecker{
		pkg:        pkg,
		diags:      diags,
		sig:        sig,
		sanctioned: map[*ast.CallExpr]bool{},
		innerAdds:  map[*ast.BinaryExpr]bool{},
	}
}

func (c *naChecker) report(n ast.Node, format string, args ...any) {
	for _, sp := range c.panicRanges {
		if n.Pos() >= sp.lo && n.Pos() < sp.hi {
			return // cold panic path
		}
	}
	*c.diags = append(*c.diags, Diagnostic{
		Pos:     c.pkg.Fset.Position(n.Pos()),
		Rule:    "noalloc",
		Message: fmt.Sprintf(format, args...),
	})
}

func (c *naChecker) typeOf(e ast.Expr) types.Type { return c.pkg.Info.TypeOf(e) }

func (c *naChecker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func (c *naChecker) isStringAdd(e ast.Expr) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != token.ADD {
		return false
	}
	t := c.typeOf(be)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkBody runs the three pre-passes (sanctioned appends, inner string
// concatenations, panic-argument spans), then walks the body flagging
// allocation sources. Nested func literals are flagged (if capturing) but
// never walked — they run under their own contract, if any.
func (c *naChecker) checkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr)
				if !ok || len(call.Args) == 0 || !c.isBuiltin(call, "append") {
					continue
				}
				lhs := types.ExprString(n.Lhs[i])
				first := ast.Unparen(call.Args[0])
				if types.ExprString(first) == lhs {
					c.sanctioned[call] = true
					continue
				}
				// The in-place removal idiom x = append(x[:k], x[k+1:]...)
				// reuses x's backing array and never allocates.
				if se, ok := first.(*ast.SliceExpr); ok && types.ExprString(se.X) == lhs {
					c.sanctioned[call] = true
				}
			}
		case *ast.BinaryExpr:
			if n.Op != token.ADD || !c.isStringAdd(n) {
				return true
			}
			for _, sub := range []ast.Expr{n.X, n.Y} {
				if sb, ok := ast.Unparen(sub).(*ast.BinaryExpr); ok && c.isStringAdd(sb) {
					c.innerAdds[sb] = true
				}
			}
		case *ast.CallExpr:
			if isPanicCall(c.pkg.Info, n) {
				for _, a := range n.Args {
					c.panicRanges = append(c.panicRanges, span{a.Pos(), a.End()})
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if caps := c.captures(n); len(caps) > 0 {
				c.report(n, "func literal captures %s; allocates a closure", strings.Join(caps, ", "))
			}
			return false
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.CompositeLit:
			c.checkComposite(n)
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				switch c.typeOf(cl).Underlying().(type) {
				case *types.Map, *types.Slice:
					// the composite's own rule reports
				default:
					c.report(n, "&%s composite literal allocates", types.ExprString(cl.Type))
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && c.isStringAdd(n) && !c.innerAdds[n] {
				if tv, ok := c.pkg.Info.Types[n]; ok && tv.Value == nil {
					c.report(n, "string concatenation %s allocates", types.ExprString(n))
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				lhs := ast.Unparen(n.Lhs[i])
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				if lt := c.typeOf(lhs); lt != nil {
					c.checkIfaceConv(n.Rhs[i], lt, "assignment to "+types.ExprString(lhs))
				}
			}
		case *ast.ReturnStmt:
			if c.sig == nil || c.sig.Results().Len() != len(n.Results) {
				return true
			}
			for i, r := range n.Results {
				c.checkIfaceConv(r, c.sig.Results().At(i).Type(), "return")
			}
		}
		return true
	})
}

// captures lists the outer variables a func literal closes over.
func (c *naChecker) captures(lit *ast.FuncLit) []string {
	var names []string
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pkg.Info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Declared outside the literal, but not at package level: captured.
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		if v.Parent() == c.pkg.Types.Scope() || v.Parent() == types.Universe {
			return true
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}

func (c *naChecker) checkCall(call *ast.CallExpr) {
	// Type conversion?
	if tv, ok := c.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		c.checkConversion(call, tv.Type)
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if !c.sanctioned[call] {
					c.report(call, "%s is not reassigned to %s; growth allocates a new backing array",
						types.ExprString(call), types.ExprString(call.Args[0]))
				}
			case "make":
				c.report(call, "%s allocates", types.ExprString(call))
			case "new":
				c.report(call, "%s allocates", types.ExprString(call))
			}
			return
		}
	}
	// fmt package calls.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := c.pkg.Info.Uses[x].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				c.report(call, "call to fmt.%s allocates", sel.Sel.Name)
				return
			}
		}
	}
	// Implicit interface conversions at argument positions, and variadic
	// interface boxing.
	ft := c.typeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	boxed := 0
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // spread: the slice is passed through, no boxing
			}
			st, ok := params.At(np - 1).Type().Underlying().(*types.Slice)
			if !ok {
				continue
			}
			if types.IsInterface(st.Elem().Underlying()) {
				boxed++
			}
			continue // the per-call boxing diagnostic covers these
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		c.checkIfaceConv(arg, pt, "argument to "+types.ExprString(call.Fun))
	}
	if boxed > 0 {
		c.report(call, "call to %s boxes %d argument(s) into its variadic interface slice",
			types.ExprString(call.Fun), boxed)
	}
}

// checkConversion flags explicit conversions that allocate: concrete value
// to interface, and string <-> byte/rune slice.
func (c *naChecker) checkConversion(call *ast.CallExpr, target types.Type) {
	arg := call.Args[0]
	if types.IsInterface(target.Underlying()) {
		c.checkIfaceConv(arg, target, "conversion")
		return
	}
	src := c.typeOf(arg)
	if src == nil {
		return
	}
	tu, su := target.Underlying(), src.Underlying()
	if isByteOrRuneSlice(tu) && isStringType(su) {
		c.report(call, "%s copies the string into a new slice", types.ExprString(call))
	}
	if isStringType(tu) && isByteOrRuneSlice(su) {
		if tv, ok := c.pkg.Info.Types[call]; !ok || tv.Value == nil {
			c.report(call, "%s copies the slice into a new string", types.ExprString(call))
		}
	}
}

// checkIfaceConv flags a concrete, non-pointer-shaped, non-constant value
// reaching an interface-typed slot: the value is boxed on the heap.
func (c *naChecker) checkIfaceConv(arg ast.Expr, slot types.Type, where string) {
	if !types.IsInterface(slot.Underlying()) {
		return
	}
	tv, ok := c.pkg.Info.Types[arg]
	if !ok || tv.IsNil() || tv.Value != nil {
		return // nil and constants get static interface data
	}
	at := tv.Type
	if at == nil || types.IsInterface(at.Underlying()) || pointerShaped(at) {
		return
	}
	c.report(arg, "%s (%s) is boxed into interface in %s", types.ExprString(arg), at, where)
}

// pointerShaped reports whether values of t are stored directly in an
// interface word (pointer-shaped), so converting one to an interface does
// not allocate.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 1 && pointerShaped(u.Field(0).Type())
	case *types.Array:
		return u.Len() == 1 && pointerShaped(u.Elem())
	}
	return false
}

func isStringType(u types.Type) bool {
	b, ok := u.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(u types.Type) bool {
	s, ok := u.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func (c *naChecker) checkComposite(lit *ast.CompositeLit) {
	t := c.typeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.report(lit, "map literal %s allocates", types.ExprString(lit.Type))
	case *types.Slice:
		c.report(lit, "slice literal %s allocates its backing array", types.ExprString(lit.Type))
	}
}
