package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism forbids nondeterminism sources in simulator-core packages:
// wall-clock reads, process environment reads, and any use of math/rand
// (sim code must draw randomness from internal/sim's seeded xorshift so
// identical seeds replay identical runs at any sweep parallelism).
type Determinism struct {
	// SimCore selects the packages under the rule; nil means DefaultSimCore
	// plus internal/sweep.
	SimCore func(path string) bool
}

// Name implements Analyzer.
func (*Determinism) Name() string { return "determinism" }

// bannedImports are packages sim-core code may not import at all.
var bannedImports = map[string]string{
	"math/rand":    "use internal/sim's seeded xorshift RNG instead",
	"math/rand/v2": "use internal/sim's seeded xorshift RNG instead",
	"crypto/rand":  "use internal/sim's seeded xorshift RNG instead",
}

// bannedCalls maps an import path to the functions of it that read
// process-external state.
var bannedCalls = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true, "Sleep": true,
		"After": true, "AfterFunc": true, "Tick": true,
		"NewTimer": true, "NewTicker": true,
	},
	"os": {
		"Getenv": true, "LookupEnv": true, "Environ": true,
		"Getpid": true, "Hostname": true,
	},
}

// Check implements Analyzer.
func (a *Determinism) Check(pkg *Package) []Diagnostic {
	inScope := a.SimCore
	if inScope == nil {
		inScope = determinismScope
	}
	if !inScope(pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		// names maps the local identifier of each import to its path, so
		// aliased imports ("r \"math/rand\"") are still caught.
		names := map[string]string{}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := bannedImports[path]; bad {
				diags = append(diags, Diagnostic{
					Pos:     pkg.Fset.Position(imp.Pos()),
					Rule:    a.Name(),
					Message: "import of " + path + " in sim-core package; " + why,
				})
			}
			name := importName(imp, path)
			if name == "." {
				// A dot import of a package with banned functions makes its
				// calls unattributable; forbid it outright.
				if _, risky := bannedCalls[path]; risky {
					diags = append(diags, Diagnostic{
						Pos:     pkg.Fset.Position(imp.Pos()),
						Rule:    a.Name(),
						Message: "dot import of " + path + " in sim-core package hides nondeterministic calls",
					})
				}
				continue
			}
			names[name] = path
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path, isImport := names[id.Name]
			if !isImport {
				return true
			}
			// Only treat the identifier as the package when it is not
			// shadowed by a local object.
			if obj, known := pkg.Info.Uses[id]; known {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			if fns, ok := bannedCalls[path]; ok && fns[sel.Sel.Name] {
				diags = append(diags, Diagnostic{
					Pos:     pkg.Fset.Position(sel.Pos()),
					Rule:    a.Name(),
					Message: path + "." + sel.Sel.Name + " is nondeterministic; sim-core code must be replayable from its seed",
				})
			}
			return true
		})
	}
	return diags
}

// importName returns the local name an import binds: the explicit alias, or
// the path's last element.
func importName(imp *ast.ImportSpec, path string) string {
	if imp.Name != nil {
		return imp.Name.Name
	}
	if i := lastSlash(path); i >= 0 {
		return path[i+1:]
	}
	return path
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
