package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags range statements over maps whose bodies produce ordered
// output — appending to slices, emitting rows or text, accumulating into
// samples, or sending on channels — unless the enclosing function sorts
// (either the keys before iterating or the collected results after).
// Go randomizes map iteration order per run, so any such loop makes output
// depend on the iteration seed and breaks byte-identical replay.
//
// The sort exemption is deliberately syntactic: a function that both ranges
// over a map and calls sort.* / slices.Sort* is taken to be using the
// collect-then-sort idiom. The analyzer certifies the discipline, not
// arbitrary dataflow.
type MapOrder struct{}

// Name implements Analyzer.
func (*MapOrder) Name() string { return "maporder" }

// orderedSinks are method names whose calls inside a map-range body are
// treated as order-sensitive accumulation: table rows, sample observations,
// writer/builder emission and FIFO insertion.
var orderedSinks = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Row": true, "Add": true, "AddTime": true, "Merge": true, "Push": true,
}

// emitFuncs are fmt functions that write output directly.
var emitFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// Check implements Analyzer.
func (a *MapOrder) Check(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if functionSorts(fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pkg.Info.Types[rng.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if sink := orderedSink(rng.Body); sink != "" {
					diags = append(diags, Diagnostic{
						Pos:     pkg.Fset.Position(rng.Pos()),
						Rule:    a.Name(),
						Message: "map iteration order feeds ordered output (" + sink + "); sort the keys first",
					})
				}
				return true
			})
		}
	}
	return diags
}

// orderedSink returns a description of the first order-sensitive operation
// in a range body, or "" when the body is order-insensitive.
func orderedSink(body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = "channel send"
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					found = "append"
				}
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok && id.Name == "fmt" && emitFuncs[fun.Sel.Name] {
					found = "fmt." + fun.Sel.Name
				} else if orderedSinks[fun.Sel.Name] {
					found = "." + fun.Sel.Name + " call"
				}
			}
		}
		return true
	})
	return found
}

// functionSorts reports whether fn calls into sort or slices anywhere,
// the signature of the collect-then-sort idiom.
func functionSorts(fn *ast.FuncDecl) bool {
	sorts := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sorts {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if id.Name == "sort" || (id.Name == "slices" && len(sel.Sel.Name) >= 4 && sel.Sel.Name[:4] == "Sort") {
				sorts = true
			}
		}
		return true
	})
	return sorts
}
