package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Lifetime statically enforces the pooled-object discipline introduced with
// the allocation-pooling engine work: objects obtained from annotated pool
// APIs must not be touched after they are released back to their pool, must
// not be released twice, and buffers borrowed from a pooled object must not
// outlive it by escaping into foreign structures.
//
// Pool APIs are marked with doc-comment directives:
//
//	//simcheck:pool acquire   — result is a pooled object
//	//simcheck:pool release   — first argument (or receiver) returns to pool
//	//simcheck:pool borrow    — result is a buffer owned by the receiver
//
// The pass is an intra-procedural, flow-sensitive walk over each function
// body. It reports:
//
//   - use-after-release: any read, call or store involving a value on a path
//     after a release of it;
//   - double-release: a second release of the same value on one path;
//   - release-inside-loop: a value acquired outside a loop released inside
//     it (one acquire, many releases);
//   - borrowed-buffer escape: a borrow result assigned to a package-level
//     variable, to a field of an object other than the one it was borrowed
//     from, or captured by a func literal.
//
// Conditional releases are treated as releases (may-analysis): a value freed
// on one branch may not be used on the joined path. Branches that terminate
// (return, panic, break/continue) do not leak their releases past the join,
// which keeps the guard-free-return idiom clean. Like every simcheck rule, a
// finding is suppressed by //simcheck:allow lifetime on or above its line.
type Lifetime struct {
	reg poolRegistry
}

// Name implements Analyzer.
func (*Lifetime) Name() string { return "lifetime" }

// Prepare implements Preparer: the pool registry spans every package in the
// run, so call sites resolve annotations declared in other packages.
func (a *Lifetime) Prepare(pkgs []*Package) { a.reg = buildPoolRegistry(pkgs) }

// Check implements Analyzer.
func (a *Lifetime) Check(pkg *Package) []Diagnostic {
	if len(a.reg) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := &ltScanner{a: a, pkg: pkg, diags: &diags}
			s.scanStmts(fd.Body.List, ltState{}, 0)
		}
	}
	return diags
}

// ltCell is the tracked lifecycle state of one value. Aliased variables
// share a cell, so a release through any alias poisons all of them.
type ltCell struct {
	acquired bool
	acqLoop  int // loop depth at the acquire site
	borrowed bool
	origin   string // borrow receiver, as types.ExprString
	released bool
	relLine  int
}

// ltState maps variables to their cells along the current path.
type ltState map[*types.Var]*ltCell

// cloneState deep-copies a state while preserving its alias structure.
func cloneState(st ltState) ltState {
	seen := map[*ltCell]*ltCell{}
	out := make(ltState, len(st))
	for v, c := range st {
		nc, ok := seen[c]
		if !ok {
			cp := *c
			nc = &cp
			seen[c] = nc
		}
		out[v] = nc
	}
	return out
}

// mergeState folds a branch's final state into the join state: a value
// may-released, may-acquired or may-borrowed on the branch carries those
// marks past the join.
func mergeState(dst, src ltState) {
	for v, c := range src {
		d := dst[v]
		if d == nil {
			cp := *c
			dst[v] = &cp
			continue
		}
		if c.released && !d.released {
			d.released = true
			d.relLine = c.relLine
		}
		if c.acquired && !d.acquired {
			d.acquired = true
			d.acqLoop = c.acqLoop
		}
		if c.borrowed && !d.borrowed {
			d.borrowed = true
			d.origin = c.origin
		}
	}
}

type ltScanner struct {
	a     *Lifetime
	pkg   *Package
	diags *[]Diagnostic
}

func (s *ltScanner) report(pos ast.Node, format string, args ...any) {
	*s.diags = append(*s.diags, Diagnostic{
		Pos:     s.pkg.Fset.Position(pos.Pos()),
		Rule:    "lifetime",
		Message: fmt.Sprintf(format, args...),
	})
}

func (s *ltScanner) line(n ast.Node) int { return s.pkg.Fset.Position(n.Pos()).Line }

// varOf resolves an expression to the variable it names, or nil.
func (s *ltScanner) varOf(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := s.pkg.Info.Uses[id]
	if obj == nil {
		obj = s.pkg.Info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// poolCall classifies a call against the registry.
func (s *ltScanner) poolCall(call *ast.CallExpr) (poolRole, bool) {
	obj := calleeObject(s.pkg.Info, call)
	if obj == nil {
		return 0, false
	}
	role, ok := s.a.reg[obj]
	return role, ok
}

// releasedOperand returns the expression a release call frees: its first
// argument, or the method receiver for argument-less release methods.
func releasedOperand(call *ast.CallExpr) ast.Expr {
	if len(call.Args) > 0 {
		return call.Args[0]
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// borrowOrigin returns the receiver expression string of a borrow call.
func borrowOrigin(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X)
	}
	return ""
}

// scanStmts walks a statement list, reporting findings against st. It
// returns true when the list terminates abruptly (return/panic/branch), so
// callers can keep releases on dead-ended branches out of the join.
func (s *ltScanner) scanStmts(list []ast.Stmt, st ltState, loop int) bool {
	for _, stmt := range list {
		if s.scanStmt(stmt, st, loop) {
			return true
		}
	}
	return false
}

func (s *ltScanner) scanStmt(stmt ast.Stmt, st ltState, loop int) bool {
	switch stmt := stmt.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		s.scanExpr(stmt.X, st, loop)
		if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok && isPanicCall(s.pkg.Info, call) {
			return true
		}
		return false
	case *ast.AssignStmt:
		s.scanAssign(stmt, st, loop)
		return false
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					if rhs != nil {
						s.scanExpr(rhs, st, loop)
					}
					s.bindIdent(name, rhs, st, loop)
				}
			}
		}
		return false
	case *ast.IfStmt:
		s.scanStmt(stmt.Init, st, loop)
		s.scanExpr(stmt.Cond, st, loop)
		thenSt := cloneState(st)
		thenTerm := s.scanStmts(stmt.Body.List, thenSt, loop)
		elseTerm := false
		var elseSt ltState
		if stmt.Else != nil {
			elseSt = cloneState(st)
			elseTerm = s.scanStmt(stmt.Else, elseSt, loop)
		}
		if !thenTerm {
			mergeState(st, thenSt)
		}
		if elseSt != nil && !elseTerm {
			mergeState(st, elseSt)
		}
		return thenTerm && stmt.Else != nil && elseTerm
	case *ast.ForStmt:
		s.scanStmt(stmt.Init, st, loop)
		s.scanExpr(stmt.Cond, st, loop)
		bodySt := cloneState(st)
		s.scanStmts(stmt.Body.List, bodySt, loop+1)
		s.scanStmt(stmt.Post, bodySt, loop+1)
		mergeState(st, bodySt)
		return false
	case *ast.RangeStmt:
		s.scanExpr(stmt.X, st, loop)
		bodySt := cloneState(st)
		s.scanStmts(stmt.Body.List, bodySt, loop+1)
		mergeState(st, bodySt)
		return false
	case *ast.SwitchStmt:
		s.scanStmt(stmt.Init, st, loop)
		s.scanExpr(stmt.Tag, st, loop)
		s.scanClauses(stmt.Body, st, loop)
		return false
	case *ast.TypeSwitchStmt:
		s.scanStmt(stmt.Init, st, loop)
		s.scanStmt(stmt.Assign, st, loop)
		s.scanClauses(stmt.Body, st, loop)
		return false
	case *ast.ReturnStmt:
		for _, r := range stmt.Results {
			s.scanExpr(r, st, loop)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return s.scanStmts(stmt.List, st, loop)
	case *ast.LabeledStmt:
		return s.scanStmt(stmt.Stmt, st, loop)
	case *ast.DeferStmt:
		// A deferred release runs at function exit, after every subsequent
		// use: scan for uses but do not apply release semantics.
		s.scanCall(stmt.Call, st, loop, false)
		return false
	case *ast.GoStmt:
		s.scanCall(stmt.Call, st, loop, false)
		return false
	case *ast.IncDecStmt:
		s.scanExpr(stmt.X, st, loop)
		return false
	case *ast.SendStmt:
		s.scanExpr(stmt.Chan, st, loop)
		s.scanExpr(stmt.Value, st, loop)
		return false
	case *ast.SelectStmt:
		s.scanClauses(stmt.Body, st, loop)
		return false
	default:
		return false
	}
}

// scanClauses walks switch/select clause bodies, each on a clone of the
// incoming state, merging the survivors.
func (s *ltScanner) scanClauses(body *ast.BlockStmt, st ltState, loop int) {
	for _, cl := range body.List {
		var list []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				s.scanExpr(e, st, loop)
			}
			list = cl.Body
		case *ast.CommClause:
			s.scanStmt(cl.Comm, st, loop)
			list = cl.Body
		}
		clSt := cloneState(st)
		if !s.scanStmts(list, clSt, loop) {
			mergeState(st, clSt)
		}
	}
}

// scanAssign handles classification (acquire, borrow taint, aliasing),
// rebinding, and the escape checks for borrowed buffers.
func (s *ltScanner) scanAssign(stmt *ast.AssignStmt, st ltState, loop int) {
	// Uses on the right-hand side are checked first: assigning a released
	// value somewhere else is itself a use-after-release.
	for _, r := range stmt.Rhs {
		s.scanExpr(r, st, loop)
	}
	for i, lhs := range stmt.Lhs {
		var rhs ast.Expr
		if len(stmt.Rhs) == len(stmt.Lhs) {
			rhs = stmt.Rhs[i]
		}
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			s.bindIdent(lhs, rhs, st, loop)
		case *ast.SelectorExpr:
			s.scanExpr(lhs.X, st, loop)
			if cell := s.taintOf(rhs, st); cell != nil && cell.borrowed {
				base := types.ExprString(lhs.X)
				if base != cell.origin {
					s.report(stmt, "borrowed buffer from %s escapes into field %s", cell.origin, types.ExprString(lhs))
				}
			}
		case *ast.IndexExpr:
			s.scanExpr(lhs.X, st, loop)
			s.scanExpr(lhs.Index, st, loop)
		case *ast.StarExpr:
			s.scanExpr(lhs.X, st, loop)
		}
	}
}

// bindIdent rebinds one identifier from its initializer, classifying pool
// acquisitions, borrow taints and aliases.
func (s *ltScanner) bindIdent(id *ast.Ident, rhs ast.Expr, st ltState, loop int) {
	if id.Name == "_" {
		return
	}
	obj := s.pkg.Info.Defs[id]
	if obj == nil {
		obj = s.pkg.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	cell := s.cellFor(rhs, st, loop)
	if cell == nil {
		delete(st, v)
		return
	}
	st[v] = cell
	if cell.borrowed && v.Parent() == s.pkg.Types.Scope() {
		s.report(id, "borrowed buffer from %s escapes into package-level variable %s", cell.origin, id.Name)
	}
}

// cellFor classifies an initializer expression: a direct acquire call, an
// expression tainted by a borrow, or an alias of an already-tracked value.
func (s *ltScanner) cellFor(rhs ast.Expr, st ltState, loop int) *ltCell {
	if rhs == nil {
		return nil
	}
	rhs = ast.Unparen(rhs)
	if call, ok := rhs.(*ast.CallExpr); ok {
		if role, ok := s.poolCall(call); ok {
			switch role {
			case poolAcquire:
				return &ltCell{acquired: true, acqLoop: loop}
			case poolBorrow:
				return &ltCell{borrowed: true, origin: borrowOrigin(call)}
			case poolRelease:
				// A release call has no result to track.
			default:
				panic("analysis: unknown pool role")
			}
		}
	}
	// Alias of a tracked variable: share its cell.
	if v := s.varOf(rhs); v != nil {
		if cell := st[v]; cell != nil {
			return cell
		}
		return nil
	}
	// An expression containing a borrow call (UnicastPathInto(w.TakePathBuf(),
	// ...)) or a tainted variable (append(path, n)) carries the taint.
	var found *ltCell
	ast.Inspect(rhs, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if role, ok := s.poolCall(n); ok && role == poolBorrow {
				found = &ltCell{borrowed: true, origin: borrowOrigin(n)}
				return false
			}
		case *ast.Ident:
			if obj, ok := s.pkg.Info.Uses[n].(*types.Var); ok {
				if cell := st[obj]; cell != nil && cell.borrowed {
					found = cell
					return false
				}
			}
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return found
}

// taintOf is cellFor without binding side effects, used for escape checks on
// field stores.
func (s *ltScanner) taintOf(rhs ast.Expr, st ltState) *ltCell {
	if rhs == nil {
		return nil
	}
	return s.cellFor(rhs, st, 0)
}

// scanExpr walks an expression for uses of released values, release calls,
// and closures capturing tracked values.
func (s *ltScanner) scanExpr(e ast.Expr, st ltState, loop int) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.Ident:
		s.checkUse(e, st)
	case *ast.CallExpr:
		s.scanCall(e, st, loop, true)
	case *ast.FuncLit:
		s.scanFuncLit(e, st)
	case *ast.SelectorExpr:
		s.scanExpr(e.X, st, loop)
	case *ast.ParenExpr:
		s.scanExpr(e.X, st, loop)
	case *ast.StarExpr:
		s.scanExpr(e.X, st, loop)
	case *ast.UnaryExpr:
		s.scanExpr(e.X, st, loop)
	case *ast.BinaryExpr:
		s.scanExpr(e.X, st, loop)
		s.scanExpr(e.Y, st, loop)
	case *ast.IndexExpr:
		s.scanExpr(e.X, st, loop)
		s.scanExpr(e.Index, st, loop)
	case *ast.SliceExpr:
		s.scanExpr(e.X, st, loop)
		s.scanExpr(e.Low, st, loop)
		s.scanExpr(e.High, st, loop)
		s.scanExpr(e.Max, st, loop)
	case *ast.TypeAssertExpr:
		s.scanExpr(e.X, st, loop)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			s.scanExpr(el, st, loop)
		}
	case *ast.KeyValueExpr:
		s.scanExpr(e.Key, st, loop)
		s.scanExpr(e.Value, st, loop)
	}
}

// scanCall handles release semantics and recurses into arguments.
// applyRelease is false under defer/go, where the release runs later.
func (s *ltScanner) scanCall(call *ast.CallExpr, st ltState, loop int, applyRelease bool) {
	role, isPool := s.poolCall(call)
	if isPool && role == poolRelease && applyRelease {
		op := releasedOperand(call)
		// Scan everything except the released operand itself (the release is
		// not a "use"), then apply the release.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && (len(call.Args) > 0 || sel.X != op) {
			s.scanExpr(sel.X, st, loop)
		}
		for _, a := range call.Args {
			if a != op {
				s.scanExpr(a, st, loop)
			}
		}
		if v := s.varOf(op); v != nil {
			cell := st[v]
			if cell == nil {
				cell = &ltCell{}
				st[v] = cell
			}
			if cell.released {
				s.report(call, "double release of %s; already released at line %d", types.ExprString(op), cell.relLine)
				return
			}
			cell.released = true
			cell.relLine = s.line(call)
			if cell.acquired && cell.acqLoop < loop {
				s.report(call, "release of %s inside a loop, but it was acquired once outside the loop", types.ExprString(op))
			}
		}
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		s.scanExpr(sel.X, st, loop)
	}
	for _, a := range call.Args {
		s.scanExpr(a, st, loop)
	}
}

// checkUse flags a read of a released value.
func (s *ltScanner) checkUse(id *ast.Ident, st ltState) {
	v, ok := s.pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	if cell := st[v]; cell != nil && cell.released {
		s.report(id, "use of %s after release at line %d", id.Name, cell.relLine)
	}
}

// scanFuncLit checks a closure against the enclosing state — capturing a
// borrowed buffer or an already-released value — then scans the closure body
// as its own fresh scope.
func (s *ltScanner) scanFuncLit(lit *ast.FuncLit, st ltState) {
	flagged := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := s.pkg.Info.Uses[id].(*types.Var)
		if !ok || flagged[v] {
			return true
		}
		cell := st[v]
		if cell == nil {
			return true
		}
		if cell.borrowed {
			s.report(id, "borrowed buffer from %s captured by closure", cell.origin)
			flagged[v] = true
		} else if cell.released {
			s.report(id, "use of %s after release at line %d (captured by closure)", id.Name, cell.relLine)
			flagged[v] = true
		}
		return true
	})
	s.scanStmts(lit.Body.List, ltState{}, 0)
}

// isPanicCall reports whether a call invokes the builtin panic.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
