// Package exhaustive_bad violates the exhaustive rule: switches over an
// iota enum miss members without a panicking default.
package exhaustive_bad

type state int

const (
	idle state = iota
	busy
	done
)

func describe(s state) string {
	switch s {
	case idle:
		return "idle"
	case busy:
		return "busy"
	}
	return "?"
}

func class(s state) string {
	switch s {
	case idle:
		return "idle"
	default:
		return "other"
	}
}
