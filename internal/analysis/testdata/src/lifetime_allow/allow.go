// Package lifetimeallow carries the same lifetime violations as the bad
// fixture, each suppressed by an //simcheck:allow lifetime escape comment —
// proving the suppression convention covers the new rule.
package lifetimeallow

type obj struct {
	buf []byte
	n   int
}

type pool struct{ free []*obj }

type holder struct{ buf []byte }

//simcheck:pool acquire
func (p *pool) get() *obj {
	if len(p.free) == 0 {
		return &obj{}
	}
	o := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return o
}

//simcheck:pool release
func (p *pool) put(o *obj) {
	p.free = append(p.free, o)
}

//simcheck:pool borrow
func (o *obj) takeBuf() []byte {
	return o.buf[:0]
}

func useAfterRelease(p *pool) int {
	o := p.get()
	p.put(o)
	//simcheck:allow lifetime -- fixture: read of freed object is intentional
	return o.n
}

func doubleRelease(p *pool) {
	o := p.get()
	p.put(o)
	p.put(o) //simcheck:allow lifetime -- fixture: double free is intentional
}

func escapeField(o *obj, h *holder) {
	b := o.takeBuf()
	//simcheck:allow lifetime -- fixture: escape is intentional
	h.buf = b
}

func captureBorrow(o *obj) func() int {
	b := o.takeBuf()
	//simcheck:allow lifetime -- fixture: closure capture is intentional
	return func() int { return len(b) }
}
