// Package noallocallow carries noalloc violations suppressed by
// //simcheck:allow noalloc escape comments — proving the suppression
// convention covers the new rule.
package noallocallow

type sink struct{ vals []int }

func sinkAny(v any) {}

//simcheck:noalloc
func capturing(n int) func() int {
	//simcheck:allow noalloc -- fixture: closure is intentional
	f := func() int { return n }
	return f
}

//simcheck:noalloc
func boxArg(n int) {
	sinkAny(n) //simcheck:allow noalloc -- fixture: boxing is intentional
}

//simcheck:noalloc
func heap(n int) {
	//simcheck:allow noalloc -- fixture: growth is amortized
	buf := make([]int, n)
	_ = buf
}
