// Package clean is a fixture with no findings: map output is sorted before
// emission and the enum switch covers every member.
package clean

import "sort"

type color int

const (
	red color = iota
	green
	blue
)

func name(c color) string {
	switch c {
	case red:
		return "red"
	case green:
		return "green"
	case blue:
		return "blue"
	}
	panic("clean: color out of range")
}

// sortedValues demonstrates the collect-then-sort idiom the maporder rule
// exempts: the function ranges over a map but also calls sort.
func sortedValues(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
