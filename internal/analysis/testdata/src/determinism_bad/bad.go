// Package determinism_bad violates the determinism rule: it imports
// math/rand and reads the wall clock and the process environment.
package determinism_bad

import (
	"math/rand"
	"os"
	"time"
)

func jitter() int { return rand.Intn(10) }

func now() int64 { return time.Now().UnixNano() }

func wait() { time.Sleep(1) }

func env() string { return os.Getenv("HOME") }
