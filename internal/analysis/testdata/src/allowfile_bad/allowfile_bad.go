// Package allowfile_bad proves //simcheck:allow-file is rule-scoped: the
// file-wide nogoroutine exemption does not cover the determinism violation,
// which must still be reported.
package allowfile_bad

//simcheck:allow-file nogoroutine -- fixture: only this rule is exempted

import "time"

func leak() (chan int, int64) {
	return make(chan int), time.Now().UnixNano()
}
