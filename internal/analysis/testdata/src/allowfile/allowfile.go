// Package allowfile exercises the //simcheck:allow-file directive: the
// whole file is exempted from the nogoroutine rule (the serving-layer
// idiom), while other rules stay in force — the wall-clock read below
// still needs its own per-line escape.
package allowfile

//simcheck:allow-file nogoroutine -- fixture: concurrency is this file's purpose

import (
	"sync"
	"time"
)

func fanOut(work []int) int {
	var wg sync.WaitGroup
	results := make(chan int, len(work))
	for _, w := range work {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results <- w * w
		}(w)
	}
	wg.Wait()
	total := 0
	for range work {
		total += <-results
	}
	return total
}

func stamp() int64 {
	return time.Now().UnixNano() //simcheck:allow determinism -- fixture: per-line escape still required
}
