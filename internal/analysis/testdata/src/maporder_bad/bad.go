// Package maporder_bad violates the maporder rule: slices and output are
// produced straight out of map ranges without sorting.
package maporder_bad

import "fmt"

func flatten(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
