// Package nogoroutine_bad violates the nogoroutine rule: it imports sync,
// spawns goroutines and communicates over channels.
package nogoroutine_bad

import "sync"

func fanOut(work []int) int {
	var wg sync.WaitGroup
	results := make(chan int, len(work))
	for _, w := range work {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results <- w * w
		}(w)
	}
	wg.Wait()
	total := 0
	for range work {
		total += <-results
	}
	return total
}
