// Package lifetimebad violates the pooled-object lifetime discipline in
// every way the lifetime analyzer detects, and also exercises the patterns
// it must NOT flag (same-origin stores, guard-free-return, deferred release).
package lifetimebad

type obj struct {
	buf []byte
	n   int
}

type pool struct{ free []*obj }

type holder struct{ buf []byte }

var global []byte

//simcheck:pool acquire
func (p *pool) get() *obj {
	if len(p.free) == 0 {
		return &obj{}
	}
	o := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return o
}

//simcheck:pool release
func (p *pool) put(o *obj) {
	p.free = append(p.free, o)
}

//simcheck:pool borrow
func (o *obj) takeBuf() []byte {
	return o.buf[:0]
}

func useAfterRelease(p *pool) int {
	o := p.get()
	p.put(o)
	return o.n
}

func doubleRelease(p *pool) {
	o := p.get()
	p.put(o)
	p.put(o)
}

func releaseInLoop(p *pool) {
	o := p.get()
	for i := 0; i < 4; i++ {
		p.put(o)
	}
}

func mayRelease(p *pool, cond bool) int {
	o := p.get()
	if cond {
		p.put(o)
	}
	return o.n
}

func escapeField(o *obj, h *holder) {
	b := o.takeBuf()
	h.buf = b
}

func escapeGlobal(o *obj) {
	global = o.takeBuf()
}

func captureBorrow(o *obj) func() int {
	b := o.takeBuf()
	return func() int { return len(b) }
}

// The rest must stay clean: these are the sanctioned idioms.

func sameOrigin(o *obj) {
	b := o.takeBuf()
	b = append(b, 1)
	o.buf = b
}

func guardFree(p *pool, o *obj, bad bool) int {
	if bad {
		p.put(o)
		return 0
	}
	return o.n
}

func deferred(p *pool) int {
	o := p.get()
	defer p.put(o)
	return o.n
}

func reacquire(p *pool) int {
	o := p.get()
	p.put(o)
	o = p.get()
	n := o.n
	p.put(o)
	return n
}
