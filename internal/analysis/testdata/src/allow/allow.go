// Package allow exercises //simcheck:allow escape comments: every violation
// carries a suppression (same line or the line above), so the package
// analyzes clean.
package allow

import "time"

func wallClock() int64 {
	//simcheck:allow determinism -- fixture: progress display is wall-clock
	return time.Now().UnixNano()
}

func sameLine() int64 {
	return time.Now().UnixNano() //simcheck:allow determinism
}
