// Package noallocbad violates every //simcheck:noalloc contract the noalloc
// analyzer detects, and exercises the patterns it must NOT flag (append
// reuse, pointer-shaped interface conversions, panic arguments).
package noallocbad

import "fmt"

type sink struct{ vals []int }

var x any

func sinkAny(v any) {}

func sprint(args ...any) {}

//simcheck:noalloc
func capturing(n int) func() int {
	f := func() int { return n }
	return f
}

//simcheck:noalloc
func boxReturn(n int) any {
	return n
}

//simcheck:noalloc
func boxAssign(n int) {
	x = n
}

//simcheck:noalloc
func boxConvert(n int) int {
	v := any(n)
	return v.(int)
}

//simcheck:noalloc
func boxArg(n int) {
	sinkAny(n)
}

//simcheck:noalloc
func boxVariadic(n int) {
	sprint(n, n)
}

//simcheck:noalloc
func badAppend(s *sink, v int) []int {
	t := append(s.vals, v)
	return t
}

//simcheck:noalloc
func heap(n int) *sink {
	_ = make([]int, n)
	m := map[int]int{}
	_ = m
	sl := []int{1, 2, 3}
	_ = sl
	return &sink{}
}

//simcheck:noalloc
func format(n int) string {
	return fmt.Sprintf("%d", n)
}

//simcheck:noalloc
func concat(a, b string) string {
	return a + b
}

//simcheck:noalloc
func toBytes(s string) []byte {
	return []byte(s)
}

var handler func(int)

func install() {
	//simcheck:noalloc
	handler = func(v int) {
		_ = new(int)
	}
}

// The rest must stay clean: sanctioned idioms inside noalloc functions.

//simcheck:noalloc
func goodAppend(s *sink, v int) {
	s.vals = append(s.vals, v)
}

//simcheck:noalloc
func passPtr(s *sink) {
	sinkAny(s)
}

//simcheck:noalloc
func coldPanic(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad %d", n))
	}
}

//simcheck:noalloc
func constIface() {
	sinkAny(nil)
	sinkAny("static")
}

// Unannotated functions may allocate freely.
func unchecked(n int) []int {
	return append([]int{}, n)
}
