package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the package's import path ("repro/internal/routing").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions every file in the package (shared across the load).
	Fset *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries expression types, constant values and identifier uses.
	Info *types.Info
}

// Loader parses and type-checks module packages using only the standard
// library: module-internal imports are resolved recursively from source, and
// standard-library imports fall back to go/importer's source importer.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles (which the go toolchain rejects
	// anyway, but a clear error beats a stack overflow).
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir. It reads
// the module path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// LoadModule loads every package in the module, sorted by import path.
// Directories named testdata and hidden directories are skipped, matching
// the go toolchain.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir loads the single package in dir under the given import path,
// without requiring dir to sit inside the module tree. Used by the analyzer
// fixture tests to load testdata packages the module loader skips.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	return l.check(dir, importPath)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	return l.check(dir, path)
}

// Import resolves an import for the type checker: module packages load
// recursively from source, everything else defers to the standard importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) check(dir, path string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		// Position diagnostics with module-relative paths so output is
		// stable regardless of where simcheck runs from.
		display := full
		if rel, err := filepath.Rel(l.ModuleRoot, full); err == nil && !strings.HasPrefix(rel, "..") {
			display = filepath.ToSlash(rel)
		}
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, display, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
