package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file implements the annotation grammar shared by the memory-discipline
// analyzers (lifetime and noalloc). Two directives mark contracts in source:
//
//	//simcheck:pool acquire|release|borrow
//	//simcheck:noalloc
//
// A pool directive goes in the doc comment of a pool API function. "acquire"
// marks a function whose result is a pooled object; "release" marks the
// function that returns one to its pool (the released operand is the first
// argument, or the receiver for argument-less methods); "borrow" marks a
// method lending out an internal buffer owned by its receiver.
//
// A noalloc directive goes in the doc comment of a function declaration, or
// on the line directly above a func literal (the convention for the bound
// handler closures in internal/coherence's initHandlers). It asserts the
// function's steady-state body performs no heap allocation; the noalloc
// analyzer enforces the assertion statically.

// poolRole classifies a pool API function.
type poolRole int

const (
	poolAcquire poolRole = iota
	poolRelease
	poolBorrow
)

func (r poolRole) String() string {
	switch r {
	case poolAcquire:
		return "acquire"
	case poolRelease:
		return "release"
	case poolBorrow:
		return "borrow"
	default:
		panic("analysis: unknown pool role")
	}
}

const (
	poolPrefix    = "//simcheck:pool"
	noallocMarker = "//simcheck:noalloc"
)

// poolRegistry maps pool API function objects to their roles. It is built
// across every package in a Run, so call sites in one package resolve
// annotations declared in another (coherence calling network.NewWorm).
type poolRegistry map[types.Object]poolRole

// Preparer is an optional Analyzer extension: Run calls Prepare with the full
// package set before any per-package Check, letting annotation-driven
// analyzers build cross-package registries.
type Preparer interface {
	Prepare(pkgs []*Package)
}

// buildPoolRegistry scans every function declaration's doc comment in pkgs
// for //simcheck:pool directives.
func buildPoolRegistry(pkgs []*Package) poolRegistry {
	reg := poolRegistry{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				role, ok := poolDirective(fd.Doc)
				if !ok {
					continue
				}
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					reg[obj] = role
				}
			}
		}
	}
	return reg
}

// poolDirective extracts the pool role from a doc comment, if any.
func poolDirective(doc *ast.CommentGroup) (poolRole, bool) {
	if doc == nil {
		return 0, false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, poolPrefix)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "acquire":
			return poolAcquire, true
		case "release":
			return poolRelease, true
		case "borrow":
			return poolBorrow, true
		}
	}
	return 0, false
}

// hasNoallocDoc reports whether a declaration doc comment carries the
// noalloc directive.
func hasNoallocDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, noallocMarker) {
			return true
		}
	}
	return false
}

// noallocLitLines collects, per file, the line numbers of free-standing
// //simcheck:noalloc comments; a func literal starting on such a line or the
// line directly below is annotated.
func noallocLitLines(pkg *Package, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, noallocMarker) {
				lines[pkg.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// calleeObject resolves a call expression to the function object it invokes:
// a plain function, a method (possibly through a package qualifier), or nil
// for indirect calls, builtins and conversions.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
